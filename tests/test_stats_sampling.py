"""Unit coverage for the estimator-error measures (``repro.stats.
accuracy``) and the CI report formatting (``repro.stats.report``) that
back the sampled-replay calibration loop: error round-trips, coverage
edge cases, metric accessors, and a golden CI table."""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro.stats.accuracy import (
    EstimateError,
    compare_results,
    interval_covers,
    max_rel_error,
    relative_error,
)
from repro.stats.report import format_ci, format_estimate_table
from repro.stats.sampling import MetricEstimate, metric_value


# ----------------------------------------------------------------------
# relative_error / interval_covers edge cases
# ----------------------------------------------------------------------
class TestErrorMeasures:
    def test_relative_error_basic(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.10)
        assert relative_error(90.0, 100.0) == pytest.approx(0.10)
        assert relative_error(100.0, 100.0) == 0.0

    def test_relative_error_negative_exact_uses_magnitudes(self):
        assert relative_error(-90.0, -100.0) == pytest.approx(0.10)

    def test_relative_error_zero_exact_agreement_is_zero(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_relative_error_zero_exact_disagreement_is_infinite(self):
        """An infinite error can never pass a calibration target — the
        safe failure mode for a metric the sampler invented."""
        assert math.isinf(relative_error(5.0, 0.0))

    def test_interval_covers_is_closed(self):
        assert interval_covers(1.0, 2.0, 1.0)
        assert interval_covers(1.0, 2.0, 2.0)
        assert interval_covers(1.0, 2.0, 1.5)
        assert not interval_covers(1.0, 2.0, 0.999)
        assert not interval_covers(1.0, 2.0, 2.001)


# ----------------------------------------------------------------------
# EstimateError round trips
# ----------------------------------------------------------------------
class TestEstimateError:
    def _err(self):
        return EstimateError(
            metric="cycles", exact=100.0, estimate=95.0, lo=90.0, hi=105.0
        )

    def test_derived_properties(self):
        err = self._err()
        assert err.rel_error == pytest.approx(0.05)
        assert err.covered

    def test_to_dict_includes_derived_fields(self):
        payload = self._err().to_dict()
        assert payload["metric"] == "cycles"
        assert payload["rel_error"] == pytest.approx(0.05)
        assert payload["covered"] is True

    def test_round_trip_ignores_derived_keys(self):
        """``from_dict`` reconstructs from the stored fields only; the
        derived keys a JSON reader sees are recomputed, never trusted."""
        payload = self._err().to_dict()
        payload["rel_error"] = 0.999  # doctored: must not survive
        payload["covered"] = False
        back = EstimateError.from_dict(payload)
        assert back == self._err()
        assert back.rel_error == pytest.approx(0.05)
        assert back.covered

    def test_uncovered_interval(self):
        err = EstimateError(
            metric="ipc", exact=2.0, estimate=1.0, lo=0.9, hi=1.1
        )
        assert not err.covered
        assert err.rel_error == pytest.approx(0.5)

    def test_max_rel_error(self):
        errors = {
            "a": EstimateError("a", 100.0, 101.0, 100.0, 102.0),
            "b": EstimateError("b", 100.0, 120.0, 100.0, 140.0),
        }
        assert max_rel_error(errors) == pytest.approx(0.20)
        assert max_rel_error({}) == 0.0


# ----------------------------------------------------------------------
# compare_results and the metric accessor
# ----------------------------------------------------------------------
def _fake_exact(cycles=1000.0, warp_instructions=500):
    """Duck-typed exact result: just the accessors the metrics touch."""
    return SimpleNamespace(
        cycles=cycles, warp_instructions=warp_instructions, blocks=[]
    )


def _fake_sampled(ci):
    return SimpleNamespace(ci=ci, blocks=[])


class TestCompareResults:
    def test_sampled_side_answers_from_its_intervals(self):
        sampled = _fake_sampled({
            "cycles": MetricEstimate(value=950.0, lo=900.0, hi=1050.0),
        })
        errors = compare_results(sampled, _fake_exact(), ["cycles"])
        err = errors["cycles"]
        assert err.estimate == 950.0
        assert err.exact == 1000.0
        assert (err.lo, err.hi) == (900.0, 1050.0)
        assert err.covered
        assert err.rel_error == pytest.approx(0.05)

    def test_metric_without_interval_gets_a_point_interval(self):
        sampled = _fake_sampled({
            "warp_instructions": MetricEstimate(value=500.0, lo=500.0,
                                                hi=500.0),
        })
        # total_stall_cycles has no ci entry: lo == hi == estimate.
        sampled.blocks = []
        errors = compare_results(
            sampled, _fake_exact(), ["total_stall_cycles"]
        )
        err = errors["total_stall_cycles"]
        assert err.lo == err.hi == err.estimate

    def test_metric_value_prefers_ci_point_estimates(self):
        sampled = _fake_sampled({
            "cycles": MetricEstimate(value=123.0, lo=120.0, hi=126.0),
        })
        assert metric_value(sampled, "cycles") == 123.0
        assert metric_value(_fake_exact(cycles=77.0), "cycles") == 77.0

    def test_metric_value_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown sampling metric"):
            metric_value(_fake_exact(), "no_such_metric")


# ----------------------------------------------------------------------
# Report formatting (golden output)
# ----------------------------------------------------------------------
class TestReport:
    def test_format_ci(self):
        # Integral floats print as integers; fractional ones keep four
        # significant digits.
        assert format_ci(234260.0, 231900.0, 236600.0) == (
            "234260 [231900, 236600]"
        )
        assert format_ci(10.4211, 10.317, 10.526) == "10.42 [10.32, 10.53]"
        assert format_ci(234260.5, 231900.4, 236600.6) == (
            "2.343e+05 [2.319e+05, 2.366e+05]"
        )

    def test_golden_estimate_table(self):
        ci = {
            "cycles": MetricEstimate(value=1000.0, lo=950.0, hi=1050.0,
                                     method="jackknife+envelope"),
            "ipc": MetricEstimate(value=2.0, lo=1.9, hi=2.1,
                                  method="envelope"),
            "warp_instructions": MetricEstimate(value=500.0, lo=500.0,
                                                hi=500.0, method="exact"),
        }
        table = format_estimate_table(
            ci, order=["cycles", "ipc", "warp_instructions"]
        )
        assert table == "\n".join([
            "metric            | estimate [95% CI] | +/-  | method            ",  # noqa: E501
            "------------------+-------------------+------+-------------------",  # noqa: E501
            "cycles            | 1000 [950, 1050]  | 5.0% | jackknife+envelope",  # noqa: E501
            "ipc               | 2 [1.9, 2.1]      | 5.0% | envelope          ",  # noqa: E501
            "warp_instructions | 500 [500, 500]    | 0.0% | exact             ",  # noqa: E501
        ])

    def test_default_order_is_sorted(self):
        ci = {
            "b": MetricEstimate(value=1.0, lo=1.0, hi=1.0),
            "a": MetricEstimate(value=1.0, lo=1.0, hi=1.0),
        }
        lines = format_estimate_table(ci).splitlines()
        assert lines[2].startswith("a")
        assert lines[3].startswith("b")
