"""Tests for sequential kernel launches on one GPU (persistent device clock)."""

import numpy as np

from repro import GPU, GPUConfig

from tests.conftest import build_copy_kernel


def test_device_clock_advances():
    gpu = GPU(GPUConfig.default_sim())
    n = 128
    src = gpu.memory.alloc_array(np.arange(n, dtype=float))
    dst = gpu.memory.alloc_array(np.zeros(n))
    kernel = build_copy_kernel(n, src, dst)
    assert gpu.now == 0.0
    gpu.launch(kernel, 2, 64)
    first_end = gpu.now
    assert first_end > 0
    gpu.launch(kernel, 2, 64)
    assert gpu.now > first_end


def test_second_launch_not_inflated_by_stale_queues():
    """Resource timestamps persist; a later launch must not pay for them."""
    gpu = GPU(GPUConfig.default_sim())
    n = 512
    src = gpu.memory.alloc_array(np.arange(n, dtype=float))
    dst = gpu.memory.alloc_array(np.zeros(n))
    kernel = build_copy_kernel(n, src, dst)
    first = gpu.launch(kernel, 8, 64)
    second = gpu.launch(kernel, 8, 64)
    # The second launch hits warm caches; it must be no slower than ~1.5x
    # the first (it was ~10x before the persistent-clock fix).
    assert second.cycles < 1.5 * first.cycles


def test_per_launch_stats_are_deltas():
    gpu = GPU(GPUConfig.default_sim())
    n = 256
    src = gpu.memory.alloc_array(np.arange(n, dtype=float))
    dst = gpu.memory.alloc_array(np.zeros(n))
    kernel = build_copy_kernel(n, src, dst)
    first = gpu.launch(kernel, 4, 64)
    second = gpu.launch(kernel, 4, 64)
    assert second.thread_instructions == first.thread_instructions
    assert second.warp_instructions == first.warp_instructions
    assert len(first.blocks) == 4 and len(second.blocks) == 4
    # Second launch re-reads the same lines: strictly more L1 hits.
    assert second.l1_stats.hits >= first.l1_stats.hits
    assert second.l1_stats.accesses == first.l1_stats.accesses


def test_warm_cache_carries_across_launches():
    gpu = GPU(GPUConfig.default_sim(num_sms=1))
    n = 64
    src = gpu.memory.alloc_array(np.arange(n, dtype=float))
    dst = gpu.memory.alloc_array(np.zeros(n))
    kernel = build_copy_kernel(n, src, dst)
    first = gpu.launch(kernel, 1, 64)
    second = gpu.launch(kernel, 1, 64)
    assert second.l1_stats.hit_rate > first.l1_stats.hit_rate
    assert second.cycles <= first.cycles


def test_functional_isolation_between_launches():
    """A second kernel sees the first kernel's memory side effects."""
    gpu = GPU(GPUConfig.default_sim())
    n = 64
    a = gpu.memory.alloc_array(np.arange(n, dtype=float))
    b = gpu.memory.alloc_array(np.zeros(n))
    c = gpu.memory.alloc_array(np.zeros(n))
    gpu.launch(build_copy_kernel(n, a, b), 1, 64)  # b = a
    gpu.launch(build_copy_kernel(n, b, c), 1, 64)  # c = b
    assert np.array_equal(gpu.memory.read_array(c, n), np.arange(n, dtype=float))
