"""The vector backend must be fully functional without numba.

numba is an *optional* accelerator (``repro._jit``): every jitted kernel
has a pure-numpy fallback with bit-identical results, and importing the
simulator must never require numba.  These tests simulate a numba-less
environment two ways — the ``REPRO_NO_NUMBA=1`` escape hatch and a
monkeypatched import failure — and assert the vector backend still loads,
runs, and matches the scalar engine exactly.
"""

import builtins
import importlib
import subprocess
import sys

from repro.config import GPUConfig
from repro.experiments.runner import run_scheme

WORKLOAD = "synthetic_imbalance"
SCALE = 0.25


def _signature(result):
    return (
        result.cycles,
        result.warp_instructions,
        result.thread_instructions,
        result.l1_stats.hits,
        result.l1_stats.misses,
        result.dram_accesses,
        tuple(tuple(block.warp_execution_times()) for block in result.blocks),
    )


def _run(backend):
    return run_scheme(
        WORKLOAD, "cawa", scale=SCALE,
        config=GPUConfig.default_sim().with_backend(backend),
        use_cache=False, persistent=False,
    )


def test_jit_or_returns_fallback_without_numba(monkeypatch):
    """With numba absent, ``jit_or`` swaps in the fallback *object* —
    zero per-call dispatch overhead, not a wrapper."""
    import repro._jit as jit_mod

    monkeypatch.setattr(jit_mod, "HAS_NUMBA", False)

    def fallback(x):
        return x + 1

    def loop(x):  # pragma: no cover - must be replaced, never called
        raise AssertionError("jitted body called without numba")

    decorated = jit_mod.jit_or(fallback)(loop)
    assert decorated is fallback
    assert decorated(41) == 42


def test_import_survives_numba_import_error(monkeypatch):
    """Reload ``repro._jit`` with ``import numba`` raising: the module
    must import cleanly and report ``HAS_NUMBA is False``."""
    real_import = builtins.__import__

    def no_numba(name, *args, **kwargs):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba unavailable (simulated)")
        return real_import(name, *args, **kwargs)

    monkeypatch.delenv("REPRO_NO_NUMBA", raising=False)
    monkeypatch.setattr(builtins, "__import__", no_numba)
    monkeypatch.delitem(sys.modules, "numba", raising=False)
    import repro._jit as jit_mod

    try:
        reloaded = importlib.reload(jit_mod)
        assert reloaded.HAS_NUMBA is False
        assert reloaded._numba is None
    finally:
        monkeypatch.undo()
        importlib.reload(jit_mod)


def test_vector_parity_on_numpy_only_path():
    """Parity grid cell in a subprocess with ``REPRO_NO_NUMBA=1``: the
    numpy-only vector path must match the scalar engine bit-for-bit.

    A subprocess is used because ``repro.memory.vector`` binds its kernels
    at import time; an in-process env flip would not rebind them.
    """
    code = (
        "from repro.config import GPUConfig\n"
        "from repro.experiments.runner import run_scheme\n"
        "import repro._jit as jit\n"
        "assert jit.HAS_NUMBA is False\n"
        "sigs = []\n"
        "for backend in ('python', 'vector'):\n"
        f"    r = run_scheme({WORKLOAD!r}, 'cawa', scale={SCALE},\n"
        "                   config=GPUConfig.default_sim()"
        ".with_backend(backend),\n"
        "                   use_cache=False, persistent=False)\n"
        "    sigs.append((r.cycles, r.warp_instructions,\n"
        "                 r.l1_stats.hits, r.l1_stats.misses,\n"
        "                 tuple(tuple(b.warp_execution_times())"
        " for b in r.blocks)))\n"
        "assert sigs[0] == sigs[1], 'numpy-only vector path diverged'\n"
        "print('fallback-parity-ok')\n"
    )
    import os

    env = dict(os.environ, REPRO_NO_NUMBA="1")
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env,
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "fallback-parity-ok" in proc.stdout


def test_vector_backend_runs_in_current_environment():
    """Whatever this environment has (numba or not), vector == python."""
    assert _signature(_run("python")) == _signature(_run("vector"))


def test_jit_or_preserves_signature_semantics():
    """The numpy fallbacks of the mirror's kernels agree with the scalar
    loops they replace (spot check on the tag-probe pair)."""
    import numpy as np

    from repro.memory.vector import _find_tag_numpy, _first_invalid_numpy

    row = np.array([7, -1, 3, 3, -1], dtype=np.int64)
    assert _find_tag_numpy(row, 3) == 2  # first match
    assert _find_tag_numpy(row, 99) == -1
    assert _first_invalid_numpy(row, 0, 5) == 1  # first invalid in range
    assert _first_invalid_numpy(row, 2, 4) == -1
    assert _first_invalid_numpy(row, 2, 5) == 4
