"""Tests for active-mask helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simt.mask import (
    bools_from_mask,
    full_mask,
    lanes_of,
    mask_from_bools,
    popcount,
)


class TestBasics:
    def test_full_mask(self):
        assert full_mask(32) == (1 << 32) - 1
        assert full_mask(1) == 1
        assert full_mask(0) == 0

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(full_mask(32)) == 32

    def test_lanes_of(self):
        assert list(lanes_of(0b1011)) == [0, 1, 3]
        assert list(lanes_of(0)) == []

    def test_bools_roundtrip(self):
        mask = 0b101101
        flags = bools_from_mask(mask, 8)
        assert mask_from_bools(flags) == mask

    def test_bools_from_mask_is_readonly(self):
        flags = bools_from_mask(0b11, 4)
        with pytest.raises(ValueError):
            flags[0] = False

    def test_bools_from_mask_memoized(self):
        a = bools_from_mask(0b1010, 8)
        b = bools_from_mask(0b1010, 8)
        assert a is b


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_prop_roundtrip_32(mask):
    flags = bools_from_mask(mask, 32)
    assert mask_from_bools(flags) == mask
    assert popcount(mask) == int(np.count_nonzero(flags))
    assert sorted(lanes_of(mask)) == list(np.nonzero(flags)[0])


@given(st.integers(min_value=1, max_value=64), st.data())
def test_prop_roundtrip_any_width(width, data):
    mask = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    flags = bools_from_mask(mask, width)
    assert len(flags) == width
    assert mask_from_bools(flags) == mask
