"""Golden bit-identity: the skip clock must exactly match the cycle clock.

The time-skipping clock (``GPUConfig.clock='skip'``, ``repro.gpu.clock``)
only jumps over cycles on which *no* SM can act, so every issue, cache
access, and DRAM trip must land on exactly the same cycle as under the
per-cycle loop — cycle counts, instruction totals, the full cache/DRAM
trace, and every per-warp execution time are compared bit-for-bit.

The grid covers both frontends: ``execute`` (functional lanes) and
``trace`` (recorded-stream replay).  A fast subset runs in tier 1; the
full (workload x scheme x frontend) grid is marked ``slow``.

The diagnostic counters ``cycles_skipped``/``skip_jumps`` are deliberately
*excluded* from the comparison: the cycle loop only jumps on whole-device
stalls while the skip clock jumps between every pair of events, so the two
clocks legitimately disagree there.
"""

import pytest

from repro import trace as trace_mod
from repro.config import GPUConfig
from repro.core.cawa import SCHEMES, apply_scheme
from repro.experiments.runner import build_oracle, clear_cache, run_scheme
from repro.workloads import workload_names

#: ISSUE grid {lrr, gto, caws, cawa}; round-robin is registered as "rr".
GRID_SCHEMES = ["rr", "gto", "caws", "cawa"]
FRONTENDS = ["execute", "trace"]
SCALE = 0.25

_PROGRAMS = {}


def _program(workload, scale=SCALE):
    """Record each workload once per session; both clocks replay it."""
    key = (workload, scale)
    if key not in _PROGRAMS:
        _, program = trace_mod.record_workload(
            workload, scale=scale, config=GPUConfig.default_sim()
        )
        _PROGRAMS[key] = program
    return _PROGRAMS[key]


def _signature(result):
    """Everything that must not drift between the two clocks."""
    return (
        result.cycles,
        result.warp_instructions,
        result.thread_instructions,
        result.l1_stats.accesses,
        result.l1_stats.hits,
        result.l1_stats.misses,
        result.l1_stats.bypasses,
        result.l1_stats.critical_hits,
        result.l2_stats.accesses,
        result.l2_stats.misses,
        result.dram_accesses,
        tuple(tuple(block.warp_execution_times()) for block in result.blocks),
    )


def _run(workload, scheme, frontend, clock, scale=SCALE):
    base = GPUConfig.default_sim().with_clock(clock)
    if frontend == "execute":
        if scheme == "caws":
            clear_cache()
        return run_scheme(workload, scheme, scale=scale, config=base,
                          use_cache=False, persistent=False)
    cfg = apply_scheme(base, scheme)
    oracle = None
    if cfg.scheduler_name == "caws":
        clear_cache()
        oracle = build_oracle(workload, scale, GPUConfig.default_sim())
    return trace_mod.replay_program(
        _program(workload, scale), cfg, scheme=scheme, oracle=oracle
    )[-1]


def _assert_parity(workload, scheme, frontend, scale=SCALE):
    cycle = _run(workload, scheme, frontend, "cycle", scale)
    skip = _run(workload, scheme, frontend, "skip", scale)
    assert _signature(cycle) == _signature(skip), (
        f"cycle/skip divergence on {workload} x {scheme} ({frontend})"
    )


class TestSkipParityFast:
    """Tier-1 subset: one Sens workload across the grid schemes."""

    @pytest.mark.parametrize("scheme", GRID_SCHEMES)
    def test_execute_frontend(self, scheme):
        _assert_parity("synthetic_imbalance", scheme, "execute")

    @pytest.mark.parametrize("scheme", ["rr", "cawa"])
    def test_trace_frontend(self, scheme):
        _assert_parity("synthetic_imbalance", scheme, "trace")

    def test_barrier_workload(self):
        # kmeans exercises block-wide barriers (barrier wake path) and
        # multi-launch resume across the skip loop's per-launch heap.
        _assert_parity("kmeans", "cawa", "execute", scale=0.125)

    def test_divergent_workload(self):
        _assert_parity("synthetic_divergence", "gto", "execute")

    def test_dispatch_wave_workload(self):
        # strcltr has more blocks than the device can co-host, so commits
        # trigger mid-run dispatches — the only cross-SM wake source.
        _assert_parity("strcltr_mid", "rr", "execute", scale=1.0)

    @pytest.mark.parametrize("core", ["event", "scan"])
    def test_parity_holds_on_both_issue_cores(self, core):
        base = GPUConfig.default_sim().with_issue_core(core)
        cycle = run_scheme("synthetic_imbalance", "gto", scale=SCALE,
                           config=base, use_cache=False, persistent=False)
        skip = run_scheme("synthetic_imbalance", "gto", scale=SCALE,
                          config=base.with_clock("skip"),
                          use_cache=False, persistent=False)
        assert _signature(cycle) == _signature(skip)


@pytest.mark.slow
class TestSkipParityFullGrid:
    """The full golden grid: every workload x scheme x frontend."""

    @pytest.mark.parametrize("frontend", FRONTENDS)
    @pytest.mark.parametrize("workload", workload_names())
    @pytest.mark.parametrize("scheme", GRID_SCHEMES)
    def test_grid_cell(self, workload, scheme, frontend):
        _assert_parity(workload, scheme, frontend)


def test_all_grid_schemes_are_real():
    assert set(GRID_SCHEMES) <= set(SCHEMES)
