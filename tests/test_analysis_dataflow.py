"""Tests for the dataflow analyses (``repro.analysis.dataflow``)."""

from __future__ import annotations

from repro.analysis import analyze_dataflow
from repro.isa.instructions import CmpOp, MemSpace, Special
from repro.isa.kernel import KernelBuilder


class TestDefiniteAssignment:
    def test_clean_kernel_has_no_uninit_reads(self):
        b = KernelBuilder("clean")
        i = b.sreg(Special.GTID)
        x = b.ld(b.addr(i, base=0, scale=8))
        b.st(b.addr(i, base=4096, scale=8), x)
        assert analyze_dataflow(b.build()).uninit_reads == []

    def test_never_written_register(self):
        b = KernelBuilder("uninit")
        ghost = b.reg()  # never written anywhere
        out = b.reg()
        b.add(out, ghost, 1.0)
        i = b.sreg(Special.GTID)
        b.st(b.addr(i, base=0, scale=8), out)
        reads = analyze_dataflow(b.build()).uninit_reads
        assert (0, "reg", ghost.idx, True) in reads

    def test_written_on_one_path_only(self):
        b = KernelBuilder("maybe")
        i = b.sreg(Special.TID)
        p = b.pred()
        b.setp(p, CmpOp.LT, i, 16.0)
        x = b.reg()
        f = b.begin_if(p)
        b.mov(x, 1.0)
        b.begin_else(f)
        b.nop()
        b.end_if(f)
        out = b.reg()
        add_pc = len(b._instructions)
        b.add(out, x, 1.0)  # x unwritten on the else path
        b.st(b.addr(i, base=0, scale=8), out)
        reads = analyze_dataflow(b.build()).uninit_reads
        assert (add_pc, "reg", x.idx, False) in reads

    def test_predicated_def_counts_as_assignment(self):
        # Compute-under-predicate is the standard partial-warp idiom; it
        # must NOT be reported as a maybe-uninitialized read.
        b = KernelBuilder("pdef")
        i = b.sreg(Special.TID)
        p = b.pred()
        b.setp(p, CmpOp.LT, i, 16.0)
        x = b.reg()
        b.mov(x, 1.0, pred=p)
        out = b.reg()
        b.add(out, x, 1.0)
        b.st(b.addr(i, base=0, scale=8), out)
        assert analyze_dataflow(b.build()).uninit_reads == []


class TestLiveness:
    def test_dead_load_destination(self):
        b = KernelBuilder("deadld")
        i = b.sreg(Special.GTID)
        dead = b.ld(b.addr(i, base=0, scale=8))
        b.st(b.addr(i, base=4096, scale=8), i)
        result = analyze_dataflow(b.build())
        assert any(
            kind == "reg" and idx == dead.idx
            for _, kind, idx in result.dead_writes
        )

    def test_predicated_write_does_not_kill(self):
        # mov x, 1.0; @p mov x, 2.0; st x -- the first mov is still live
        # (lanes with !p observe it), so no dead write may be reported.
        b = KernelBuilder("pkill")
        i = b.sreg(Special.TID)
        p = b.pred()
        b.setp(p, CmpOp.LT, i, 16.0)
        x = b.reg()
        b.mov(x, 1.0)
        b.mov(x, 2.0, pred=p)
        b.st(b.addr(i, base=0, scale=8), x)
        assert analyze_dataflow(b.build()).dead_writes == []

    def test_unpredicated_overwrite_kills(self):
        b = KernelBuilder("kill")
        i = b.sreg(Special.TID)
        x = b.reg()
        mov_pc = len(b._instructions)  # pc of the next emitted instruction
        b.mov(x, 1.0)
        b.mov(x, 2.0)  # unconditional overwrite: first mov is dead
        b.st(b.addr(i, base=0, scale=8), x)
        result = analyze_dataflow(b.build())
        assert (mov_pc, "reg", x.idx) in result.dead_writes

    def test_loop_carried_value_is_live(self):
        b = KernelBuilder("looplive")
        p = b.pred()
        j = b.const(0.0)
        acc = b.const(0.0)
        with b.loop() as lp:
            b.setp(p, CmpOp.GE, j, 4.0)
            lp.break_if(p)
            b.add(acc, acc, 2.0)  # live across the back edge
            b.add(j, j, 1.0)
        i = b.sreg(Special.TID)
        b.st(b.addr(i, base=0, scale=8), acc)
        assert analyze_dataflow(b.build()).dead_writes == []


class TestUniformity:
    def test_tid_branch_is_varying(self):
        b = KernelBuilder("vary")
        i = b.sreg(Special.TID)
        p = b.pred()
        b.setp(p, CmpOp.LT, i, 16.0)
        with b.if_then(p):
            b.nop()
        result = analyze_dataflow(b.build())
        assert result.varying_branch_pcs
        (branch_pc,) = result.varying_branch_pcs
        assert result.is_divergent(branch_pc + 1)

    def test_ctaid_branch_is_uniform(self):
        # Every thread of a block shares CTAID: the branch cannot diverge.
        b = KernelBuilder("uni")
        blk = b.sreg(Special.CTAID)
        p = b.pred()
        b.setp(p, CmpOp.LT, blk, 2.0)
        with b.if_then(p):
            b.nop()
        result = analyze_dataflow(b.build())
        assert result.varying_branch_pcs == frozenset()
        assert result.divergent_pcs == frozenset()

    def test_loaded_condition_is_varying(self):
        b = KernelBuilder("ldvary")
        blk = b.sreg(Special.CTAID)
        x = b.ld(b.addr(blk, base=0, scale=8))
        p = b.pred()
        b.setp(p, CmpOp.GT, x, 0.0)
        with b.if_then(p):
            b.nop()
        assert analyze_dataflow(b.build()).varying_branch_pcs


class TestAffineAddresses:
    def test_lane_stride_of_coalesced_load(self):
        b = KernelBuilder("coal")
        i = b.sreg(Special.GTID)
        x = b.ld(b.addr(i, base=1024, scale=8))
        b.st(b.addr(i, base=8192, scale=8), x)
        accesses = analyze_dataflow(b.build()).mem_accesses
        acc = [a for a in accesses.values() if a.is_load][0]
        assert acc.is_load and acc.space == "global"
        assert acc.lane_stride == 8.0
        assert acc.const_address is None
        assert acc.address == {"": 1024.0, "gtid": 8.0}

    def test_constant_shared_address(self):
        b = KernelBuilder("shconst", shared_mem_bytes=256)
        base = b.const(64.0)
        x = b.ld(base, offset=8, space=MemSpace.SHARED)
        i = b.sreg(Special.GTID)
        b.st(b.addr(i, base=0, scale=8), x)
        accesses = analyze_dataflow(b.build()).mem_accesses
        shared = [a for a in accesses.values() if a.space == "shared"]
        assert len(shared) == 1
        assert shared[0].const_address == 72.0
        assert shared[0].lane_stride == 0.0

    def test_non_affine_address_is_unknown(self):
        b = KernelBuilder("nonaff")
        i = b.sreg(Special.GTID)
        sq = b.reg()
        b.mul(sq, i, i)  # gtid * gtid: not affine
        x = b.ld(sq)
        b.st(b.addr(i, base=0, scale=8), x)
        accesses = analyze_dataflow(b.build()).mem_accesses
        load = [a for a in accesses.values() if a.is_load][0]
        assert load.address is None
        assert load.lane_stride is None
        assert load.const_address is None

    def test_shift_scales_the_stride(self):
        b = KernelBuilder("shift")
        i = b.sreg(Special.GTID)
        addr = b.reg()
        b.shl(addr, i, 4.0)  # stride 16
        x = b.ld(addr)
        b.st(b.addr(i, base=0, scale=8), x)
        accesses = analyze_dataflow(b.build()).mem_accesses
        load = [a for a in accesses.values() if a.is_load][0]
        assert load.lane_stride == 16.0
