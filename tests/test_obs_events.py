"""Unit tests for the observability subsystem's leaf layers.

Schema integrity, event validation, spec parsing, ring/spill collectors,
deterministic stream merging, stall accounting arithmetic, and the
persistent event store's round trip and failure modes.  Everything here is
synthetic — no simulation runs (those live in ``test_obs_parity.py``).
"""

import json
import zlib

import pytest

from repro.config import GPUConfig
from repro.errors import ConfigError
from repro.obs import (
    EVENT_FIELDS,
    SCHEMA_VERSION,
    STALL_NAMES,
    Ev,
    EventBus,
    RingCollector,
    SchemaError,
    Stall,
    StallAccounting,
    bus_from_spec,
    event_to_dict,
    format_top_reasons,
    merge_event_streams,
    parse_spec,
    schema_table,
    sort_events,
    validate_events,
    validate_schema,
)
from repro.obs.store import (
    EventStoreError,
    event_key,
    event_path,
    list_events,
    load_events,
    save_events,
)


def ev_issue(cycle, sm=0, block=0, warp=0, pc=4, op="ADD"):
    return (int(Ev.WARP_ISSUE), cycle, sm, block, warp, pc, op)


def ev_stall(cycle, sm=0, block=0, warp=0, reason=Stall.NO_SLOT,
             stalled=1.0, start=None):
    start = cycle - stalled if start is None else start
    return (int(Ev.WARP_STALL), cycle, sm, block, warp, int(reason),
            stalled, start)


SAMPLE = [
    (int(Ev.WARP_START), 0.0, 0, 0, 0),
    ev_issue(1.0),
    ev_stall(3.0, stalled=1.0, start=2.0),
    ev_issue(3.0),
    (int(Ev.CACHE_MISS), 3.0, 0, 0, 12, 0x80, 1),
    (int(Ev.WARP_FINISH), 9.0, 0, 0, 0),
]


class TestSchema:
    def test_schema_is_consistent(self):
        validate_schema()

    def test_every_kind_has_fields(self):
        for kind in Ev:
            assert kind in EVENT_FIELDS
            assert isinstance(EVENT_FIELDS[kind], tuple)

    def test_schema_table_covers_every_kind(self):
        rows = schema_table()
        assert {name for name, _code, _f in rows} == {k.name for k in Ev}

    def test_stall_names_cover_enum(self):
        for reason in Stall:
            assert int(reason) in STALL_NAMES

    def test_event_to_dict_round_trip(self):
        row = event_to_dict(ev_issue(5.0, sm=2, block=1, warp=3))
        assert row["kind"] == "WARP_ISSUE"
        assert row["cycle"] == 5.0
        assert row["sm"] == 2
        assert row["block"] == 1 and row["warp"] == 3

    def test_validate_accepts_sample(self):
        validate_events(SAMPLE)

    def test_validate_rejects_unknown_kind(self):
        with pytest.raises(SchemaError):
            validate_events([(999, 0.0, 0)])

    def test_validate_rejects_wrong_arity(self):
        with pytest.raises(SchemaError):
            validate_events([(int(Ev.WARP_ISSUE), 0.0, 0)])

    def test_validate_rejects_bad_stall_reason(self):
        bad = list(ev_stall(3.0))
        bad[5] = 99
        with pytest.raises(SchemaError):
            validate_events([tuple(bad)])


class TestSpecParsing:
    @pytest.mark.parametrize("spec,kind,capacity", [
        ("off", "off", 0),
        ("on", "ring", 1 << 20),
        ("ring", "ring", 1 << 20),
        ("ring:128", "ring", 128),
        ("spill:4096", "spill", 4096),
    ])
    def test_valid_specs(self, spec, kind, capacity):
        assert parse_spec(spec) == (kind, capacity)

    @pytest.mark.parametrize("spec", ["bogus", "ring:0", "ring:-1",
                                      "ring:x", "on:5"])
    def test_invalid_specs(self, spec):
        with pytest.raises(ConfigError):
            parse_spec(spec)

    def test_config_validates_events_spec(self):
        with pytest.raises(ConfigError):
            GPUConfig.default_sim().with_events("bogus")

    def test_events_excluded_from_fingerprint(self):
        base = GPUConfig.default_sim()
        assert base.fingerprint() == base.with_events("on").fingerprint()

    def test_bus_from_spec_off_is_none(self):
        assert bus_from_spec("off") is None


class TestRingCollector:
    def test_drop_oldest(self):
        ring = RingCollector(capacity=3)
        for i in range(5):
            ring.append(ev_issue(float(i)))
        assert ring.total == 5 and ring.dropped == 2
        assert [ev[1] for ev in ring.events()] == [2.0, 3.0, 4.0]

    def test_drain_resets_but_total_persists(self):
        ring = RingCollector(capacity=8)
        ring.append(ev_issue(0.0))
        assert len(ring.drain()) == 1
        assert ring.events() == [] and ring.total == 1

    def test_spill_mode_round_trip(self, tmp_path):
        ring = RingCollector(capacity=4, spill_dir=tmp_path / "spill")
        events = [ev_issue(float(i)) for i in range(10)]
        for ev in events:
            ring.append(ev)
        assert ring.dropped == 0
        assert ring.events() == events
        assert list((tmp_path / "spill").glob("*.evz"))
        assert ring.drain() == events
        assert not list((tmp_path / "spill").glob("*.evz"))

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingCollector(capacity=0)


class TestBus:
    def test_emit_reaches_attached_collectors(self):
        bus = EventBus(capacity=16)
        seen = []
        bus.attach(seen)
        bus.emit(ev_issue(1.0))
        assert seen == [ev_issue(1.0)] == bus.events()
        assert bus.emitted == 1

    def test_attach_requires_append(self):
        with pytest.raises(TypeError):
            EventBus().attach(object())

    def test_detach(self):
        bus = EventBus(capacity=16)
        seen = []
        bus.attach(seen)
        bus.detach(seen)
        bus.emit(ev_issue(1.0))
        assert seen == [] and bus.collectors == []

    def test_ingest_feeds_all_sinks(self):
        bus = EventBus(capacity=16)
        acct = StallAccounting()
        bus.attach(acct)
        bus.ingest(SAMPLE)
        assert bus.emitted == len(SAMPLE)
        assert acct.issue_cycles() == 2.0


class TestMerging:
    def test_sort_is_canonical(self):
        events = [ev_issue(2.0, sm=1), ev_issue(1.0), ev_issue(2.0, sm=0)]
        assert [ev[1:3] for ev in sort_events(events)] == [
            (1.0, 0), (2.0, 0), (2.0, 1)]

    def test_merge_independent_of_partition(self):
        events = [ev_issue(float(i), sm=i % 3) for i in range(30)]
        by_shard = [[ev for ev in events if ev[2] % 2 == s] for s in (0, 1)]
        assert merge_event_streams(by_shard) == merge_event_streams([events])


class TestStallAccounting:
    def build(self):
        acct = StallAccounting()
        acct.extend([
            ev_issue(1.0),
            ev_stall(4.0, reason=Stall.SCOREBOARD_DEP, stalled=2.0, start=2.0),
            ev_issue(4.0),
            ev_stall(10.0, reason=Stall.MEM_PENDING, stalled=4.0, start=5.0),
            ev_stall(10.0, reason=Stall.NO_SLOT, stalled=1.0, start=9.0),
            ev_issue(10.0),
            ev_issue(2.0, warp=1),
            (int(Ev.WARP_FINISH), 10.0, 0, 0, 0),
        ])
        return acct

    def test_reason_totals(self):
        totals = self.build().reason_totals()
        assert totals == {"scoreboard_dep": 2.0, "mem_pending": 4.0,
                          "no_slot": 1.0}

    def test_accounting_identity(self):
        acct = self.build()
        # 4 issues + 7 stalled cycles = 11 accounted warp-cycles.
        assert acct.issue_cycles() == 4.0
        assert acct.warp_cycles() == 11.0
        assert abs(sum(acct.shares().values()) - 1.0) < 1e-12

    def test_top_reasons_deterministic_order(self):
        top = self.build().top_reasons()
        assert [name for name, _c, _s in top] == [
            "mem_pending", "scoreboard_dep", "no_slot"]
        assert format_top_reasons(top).startswith("mem_pending")

    def test_critical_warp(self):
        key, breakdown = self.build().critical_warp()
        assert key == (0, 0, 0)
        assert breakdown["issue"] == 3.0

    def test_empty_accounting(self):
        acct = StallAccounting()
        assert acct.shares() == {}
        assert format_top_reasons(acct.top_reasons()) == "-"
        with pytest.raises(ValueError):
            acct.critical_warp()

    def test_to_dict_is_json_safe(self):
        json.dumps(self.build().to_dict())

    def test_format_table_sums_to_total(self):
        text = self.build().format_table()
        assert "100.0%" in text and "issue" in text


class TestStore:
    def test_round_trip(self):
        path = event_path(event_key("bfs", "rr", 0.25, "deadbeefcafe0123"))
        save_events(path, SAMPLE, {"workload": "bfs"})
        events, meta = load_events(path)
        assert events == [tuple(ev) for ev in SAMPLE]
        assert meta == {"workload": "bfs"}
        assert any(key.startswith("bfs-rr-0p25-") for key, _ in list_events())

    def test_missing_file(self, tmp_path):
        with pytest.raises(EventStoreError, match="no event stream"):
            load_events(tmp_path / "nope.evt.z")

    def test_corrupt_payload(self, tmp_path):
        path = tmp_path / "bad.evt.z"
        path.write_bytes(b"not zlib at all")
        with pytest.raises(EventStoreError, match="corrupt"):
            load_events(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.evt.z"
        payload = json.dumps({"format": "something-else"}).encode()
        path.write_bytes(zlib.compress(payload))
        with pytest.raises(EventStoreError, match="not a repro-events"):
            load_events(path)

    def test_schema_version_mismatch(self, tmp_path):
        path = tmp_path / "old.evt.z"
        payload = json.dumps({
            "format": "repro-events", "version": 1,
            "schema_version": SCHEMA_VERSION + 1, "events": [],
        }).encode()
        path.write_bytes(zlib.compress(payload))
        with pytest.raises(EventStoreError, match="schema"):
            load_events(path)

    def test_save_validates(self, tmp_path):
        with pytest.raises(SchemaError):
            save_events(tmp_path / "x.evt.z", [(999, 0.0, 0)])
