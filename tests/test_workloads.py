"""Functional verification of every Table 2 workload.

Each workload's kernel must produce results that match its NumPy reference
implementation, under both the baseline scheduler and the full CAWA scheme
(scheduling must never change architectural results).
"""

import numpy as np
import pytest

from repro import GPU, GPUConfig, apply_scheme
from repro.workloads import (
    NON_SENS_WORKLOADS,
    SENS_WORKLOADS,
    make_workload,
    workload_names,
)

#: Scale factors chosen so each run stays under ~1s.
FAST_SCALE = {
    "bfs": 0.25,
    "b+tree": 0.25,
    "heartwall": 0.5,
    "kmeans": 0.25,
    "needle": 0.5,
    "srad_1": 0.5,
    "strcltr_small": 0.5,
    "backprop": 0.25,
    "particle": 0.5,
    "pathfinder": 0.25,
    "strcltr_mid": 0.5,
    "tpacf": 0.5,
    "synthetic_imbalance": 1.0,
    "synthetic_divergence": 1.0,
    "synthetic_memstress": 1.0,
}


@pytest.mark.parametrize("name", workload_names(include_synthetic=True))
def test_workload_verifies_under_baseline(name):
    gpu = GPU(GPUConfig.default_sim())
    wl = make_workload(name, scale=FAST_SCALE[name])
    result = wl.run(gpu, scheme="rr", check=True)  # raises on mismatch
    assert result.cycles > 0
    assert result.thread_instructions > 0


@pytest.mark.parametrize("name", ["bfs", "kmeans", "needle", "pathfinder"])
def test_workload_verifies_under_cawa(name):
    gpu = GPU(apply_scheme(GPUConfig.default_sim(), "cawa"))
    wl = make_workload(name, scale=FAST_SCALE[name])
    wl.run(gpu, scheme="cawa", check=True)


class TestRegistry:
    def test_table2_categories(self):
        for name in SENS_WORKLOADS:
            assert make_workload(name).category == "Sens", name
        for name in NON_SENS_WORKLOADS:
            assert make_workload(name).category == "Non-sens", name

    def test_table2_has_twelve_workloads(self):
        assert len(SENS_WORKLOADS) + len(NON_SENS_WORKLOADS) == 12

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_workload("matrixmul")

    def test_workloads_are_seeded(self):
        a = make_workload("bfs", scale=0.25)
        b = make_workload("bfs", scale=0.25)
        ga, gb = GPU(GPUConfig.default_sim()), GPU(GPUConfig.default_sim())
        ra = a.run(ga, check=False)
        rb = b.run(gb, check=False)
        assert ra.cycles == rb.cycles
        assert ra.thread_instructions == rb.thread_instructions


class TestCriticalityStructure:
    def test_imbalance_workload_creates_disparity(self):
        from repro.stats.disparity import max_block_disparity

        gpu = GPU(GPUConfig.default_sim())
        wl = make_workload("synthetic_imbalance")
        result = wl.run(gpu)
        assert max_block_disparity(result) > 0.1

    def test_divergence_workload_diverges(self):
        gpu = GPU(GPUConfig.default_sim())
        make_workload("synthetic_divergence").run(gpu)
        assert sum(sm.stats.divergent_branches for sm in gpu.sms) > 0

    def test_memstress_workload_misses(self):
        gpu = GPU(GPUConfig.default_sim())
        result = make_workload("synthetic_memstress").run(gpu)
        assert result.l1_stats.miss_rate > 0.5

    def test_bfs_unbalanced_has_more_disparity_than_balanced(self):
        from repro.stats.disparity import mean_block_disparity

        g1 = GPU(GPUConfig.default_sim())
        r1 = make_workload("bfs", scale=0.5, balanced=False).run(g1)
        g2 = GPU(GPUConfig.default_sim())
        r2 = make_workload("bfs", scale=0.5, balanced=True).run(g2)
        assert mean_block_disparity(r1) > 0.0
        assert mean_block_disparity(r2) > 0.0
