"""Tests for JSON/CSV result export."""

import csv
import io
import json

import pytest

from repro.experiments import runner
from repro.experiments.runner import run_scheme, run_sweep
from repro.stats.export import result_to_dict, result_to_json, sweep_to_csv


@pytest.fixture(scope="module")
def result():
    runner.clear_cache()
    return run_scheme("synthetic_imbalance", "rr", scale=0.5)


class TestJson:
    def test_dict_has_all_metrics(self, result):
        data = result_to_dict(result)
        for key in ("cycles", "ipc", "l1_mpki", "simd_efficiency"):
            assert key in data
        assert data["kernel"] == "synthetic_imbalance"
        assert data["l1"]["accesses"] > 0

    def test_blocks_exported_with_warp_times(self, result):
        data = result_to_dict(result)
        assert data["blocks"]
        first = data["blocks"][0]
        assert first["commit_cycle"] is not None
        assert len(first["warp_execution_times"]) > 0

    def test_json_round_trips(self, result):
        text = result_to_json(result)
        parsed = json.loads(text)
        assert parsed["scheme"] == "rr"
        assert parsed["cycles"] == result.cycles


class TestCsv:
    def test_sweep_csv_shape(self):
        results = run_sweep(["synthetic_imbalance"], ["rr", "gto"], scale=0.5)
        text = sweep_to_csv(results)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][:2] == ["workload", "scheme"]
        assert len(rows) == 3  # header + 2 cells
        schemes = {row[1] for row in rows[1:]}
        assert schemes == {"rr", "gto"}

    def test_csv_values_numeric(self):
        results = run_sweep(["synthetic_imbalance"], ["rr"], scale=0.5)
        rows = list(csv.reader(io.StringIO(sweep_to_csv(results))))
        header, row = rows[0], rows[1]
        cycles = float(row[header.index("cycles")])
        assert cycles > 0
