"""Golden determinism: the event-driven issue core must exactly match the
linear-scan reference core.

The event core (``GPUConfig.issue_core = "event"``) is a pure scheduling
*implementation* change — cycle counts, issue statistics, and the entire
cache/DRAM trace must be bit-identical to the scan core for every workload
and scheme.  A fast subset runs in tier 1; the full (workload x scheme)
grid is marked ``slow``.
"""

import pytest

from repro.config import GPUConfig
from repro.core.cawa import SCHEMES
from repro.experiments.runner import run_scheme
from repro.workloads import workload_names

#: Every scheduling/prioritization scheme the grid covers.
GRID_SCHEMES = ["rr", "gto", "two_level", "gcaws", "cawa"]
SCALE = 0.25


def _signature(result):
    """Everything that must not drift between the two cores."""
    return (
        result.cycles,
        result.warp_instructions,
        result.thread_instructions,
        result.l1_stats.accesses,
        result.l1_stats.hits,
        result.l1_stats.misses,
        result.l2_stats.misses,
        result.dram_accesses,
    )


def _run_both(workload, scheme, scale=SCALE):
    """Run one cell under each core with every cache bypassed.

    ``use_cache=False`` matters: the disk cache key deliberately excludes
    the issue-core selector, so a cached event-core result would satisfy
    the scan run and mask a real divergence.
    """
    results = {}
    for core in ("event", "scan"):
        cfg = GPUConfig.default_sim().with_issue_core(core)
        results[core] = run_scheme(
            workload, scheme, scale=scale, config=cfg,
            use_cache=False, persistent=False,
        )
    return results


class TestParityFast:
    """Tier-1 subset: one Sens workload across all five schemes."""

    @pytest.mark.parametrize("scheme", GRID_SCHEMES)
    def test_synthetic_imbalance(self, scheme):
        results = _run_both("synthetic_imbalance", scheme)
        assert _signature(results["event"]) == _signature(results["scan"])

    def test_barrier_workload(self):
        # kmeans exercises block-wide barriers (barrier wake path).
        results = _run_both("kmeans", "cawa", scale=0.125)
        assert _signature(results["event"]) == _signature(results["scan"])

    def test_divergent_workload(self):
        results = _run_both("synthetic_divergence", "gcaws")
        assert _signature(results["event"]) == _signature(results["scan"])


@pytest.mark.slow
class TestParityFullGrid:
    """The full golden grid: every Table 2 workload x every scheme."""

    @pytest.mark.parametrize("workload", workload_names())
    @pytest.mark.parametrize("scheme", GRID_SCHEMES)
    def test_grid_cell(self, workload, scheme):
        results = _run_both(workload, scheme)
        assert _signature(results["event"]) == _signature(results["scan"]), (
            f"event/scan divergence on {workload} x {scheme}"
        )


def test_all_grid_schemes_are_real():
    assert set(GRID_SCHEMES) <= set(SCHEMES)
