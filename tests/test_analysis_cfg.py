"""Tests for the basic-block CFG (``repro.analysis.cfg``)."""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import CFG, build_cfg, pc_successors
from repro.isa.instructions import CmpOp, Instruction, Opcode, Special
from repro.isa.kernel import Kernel, KernelBuilder


def raw_kernel(name, instrs, *, num_regs=4, num_preds=2, shared_mem_bytes=0):
    """Wrap hand-written instructions in a Kernel WITHOUT validation.

    The analysis subsystem must cope with graphs the builder can never
    emit (that is its whole point), so fixtures go straight to the Kernel
    constructor.
    """
    resolved = [replace(inst, pc=pc) for pc, inst in enumerate(instrs)]
    return Kernel(
        name=name,
        instructions=resolved,
        labels={},
        num_regs=num_regs,
        num_preds=num_preds,
        shared_mem_bytes=shared_mem_bytes,
    )


def build_if_else_kernel():
    b = KernelBuilder("ifelse")
    i = b.sreg(Special.TID)
    p = b.pred()
    b.setp(p, CmpOp.LT, i, 16.0)
    f = b.begin_if(p)
    b.nop(2)
    b.begin_else(f)
    b.nop(3)
    b.end_if(f)
    return b.build()


class TestPcSuccessors:
    def test_straight_line(self):
        k = raw_kernel("k", [Instruction(Opcode.NOP), Instruction(Opcode.EXIT)])
        assert pc_successors(k.instructions[0], len(k)) == (1,)

    def test_exit_has_none_even_when_guarded(self):
        # The SM kills *all* lanes at EXIT, guard or not (lint CTL001).
        k = raw_kernel(
            "k", [Instruction(Opcode.EXIT, pred=0), Instruction(Opcode.EXIT)]
        )
        assert pc_successors(k.instructions[0], len(k)) == ()

    def test_conditional_branch_has_both_edges(self):
        k = raw_kernel(
            "k",
            [
                Instruction(Opcode.BRA, pred=0, target_pc=2, reconv_pc=2),
                Instruction(Opcode.NOP),
                Instruction(Opcode.EXIT),
            ],
        )
        assert pc_successors(k.instructions[0], len(k)) == (1, 2)

    def test_unconditional_branch_has_one_edge(self):
        k = raw_kernel(
            "k",
            [
                Instruction(Opcode.BRA, target_pc=2),
                Instruction(Opcode.NOP),
                Instruction(Opcode.EXIT),
            ],
        )
        assert pc_successors(k.instructions[0], len(k)) == (2,)

    def test_degenerate_branch_to_next_pc(self):
        k = raw_kernel(
            "k",
            [
                Instruction(Opcode.BRA, pred=0, target_pc=1, reconv_pc=1),
                Instruction(Opcode.EXIT),
            ],
        )
        assert pc_successors(k.instructions[0], len(k)) == (1,)


class TestCFGStructure:
    def test_if_else_blocks(self):
        k = build_if_else_kernel()
        cfg = CFG(k)
        # entry / then / else / join+exit region.
        assert cfg.blocks[0].start == 0
        assert all(b.bid in cfg.reachable for b in cfg.blocks)
        assert cfg.reaches_exit == cfg.reachable
        assert len(cfg.branches) == 1
        site = cfg.branches[0]
        assert site.target_pc > site.pc
        assert site.reconv_pc > site.target_pc  # non-empty else arm
        assert not site.is_loop_break

    def test_branch_dominates_its_reconv(self):
        k = build_if_else_kernel()
        cfg = CFG(k)
        site = cfg.branches[0]
        assert cfg.pc_dominates(site.pc, site.reconv_pc)
        # ...but neither arm dominates the join.
        assert not cfg.pc_dominates(site.pc + 1, site.reconv_pc)
        assert not cfg.pc_dominates(site.target_pc, site.reconv_pc)

    def test_loop_back_edge_detected(self):
        b = KernelBuilder("loop")
        p = b.pred()
        j = b.const(0.0)
        with b.loop() as lp:
            b.setp(p, CmpOp.GE, j, 3.0)
            lp.break_if(p)
            b.add(j, j, 1.0)
        cfg = CFG(b.build())
        assert cfg.back_edges, "loop back edge must be reported"
        src, dst = cfg.back_edges[0]
        assert cfg.blocks[dst].start <= cfg.blocks[src].start
        # The loop break is the builder's target==reconv idiom.
        assert any(site.is_loop_break for site in cfg.branches)

    def test_loop_with_predicated_back_edge(self):
        # Hand-built: a *conditional* back edge is not builder-emittable
        # (forward-branch invariant) but the CFG must still represent it.
        k = raw_kernel(
            "pback",
            [
                Instruction(Opcode.NOP),
                Instruction(Opcode.BRA, pred=0, target_pc=0, reconv_pc=2),
                Instruction(Opcode.RECONV),
                Instruction(Opcode.EXIT),
            ],
        )
        cfg = CFG(k)
        assert cfg.back_edges
        assert cfg.reaches_exit == cfg.reachable

    def test_unreachable_block_after_unconditional_branch(self):
        k = raw_kernel(
            "dead",
            [
                Instruction(Opcode.BRA, target_pc=2),
                Instruction(Opcode.NOP),
                Instruction(Opcode.EXIT),
            ],
        )
        cfg = CFG(k)
        assert [b.start for b in cfg.unreachable_blocks] == [1]

    def test_nested_if_regions(self):
        b = KernelBuilder("nested")
        i = b.sreg(Special.TID)
        p, q = b.pred(), b.pred()
        b.setp(p, CmpOp.LT, i, 16.0)
        b.setp(q, CmpOp.LT, i, 8.0)
        with b.if_then(p):
            b.nop()
            with b.if_then(q):
                b.nop()
            b.nop()
        cfg = CFG(b.build())
        outer, inner = sorted(cfg.branches, key=lambda s: s.pc)
        assert outer.contains(inner.pc)
        assert inner.reconv_pc <= outer.reconv_pc
        assert cfg.divergence_region_of(inner.pc + 1) == [outer, inner]
        assert cfg.region_blocks(outer), "outer region spans blocks"

    def test_block_at_and_block_of_are_consistent(self):
        k = build_if_else_kernel()
        cfg = CFG(k)
        for pc in range(len(k)):
            block = cfg.block_at(pc)
            assert block.start <= pc < block.end
            assert cfg.block_of[pc] == block.bid

    def test_build_cfg_alias(self):
        k = build_if_else_kernel()
        assert build_cfg(k).reachable == CFG(k).reachable


class TestDominance:
    def test_entry_dominates_everything(self):
        cfg = CFG(build_if_else_kernel())
        for bid in cfg.reachable:
            assert cfg.dominates(0, bid)

    def test_same_block_ordering(self):
        cfg = CFG(build_if_else_kernel())
        assert cfg.pc_dominates(0, 1)
        assert not cfg.pc_dominates(1, 0)
