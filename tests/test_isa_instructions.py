"""Tests for instruction metadata (pipes, flags, repr)."""

from repro.isa.instructions import (
    CmpOp,
    FuncUnit,
    Instruction,
    MemSpace,
    Opcode,
    Special,
    func_unit,
)


class TestFuncUnits:
    def test_alu_default(self):
        for op in (Opcode.ADD, Opcode.MUL, Opcode.SETP, Opcode.SELP, Opcode.SREG):
            assert func_unit(op) is FuncUnit.ALU

    def test_sfu_ops(self):
        for op in (Opcode.SQRT, Opcode.RSQRT, Opcode.RCP, Opcode.EXP,
                   Opcode.LOG, Opcode.SIN, Opcode.COS):
            assert func_unit(op) is FuncUnit.SFU

    def test_mem_ops(self):
        assert func_unit(Opcode.LD) is FuncUnit.MEM
        assert func_unit(Opcode.ST) is FuncUnit.MEM

    def test_ctrl_ops(self):
        for op in (Opcode.BRA, Opcode.RECONV, Opcode.BAR, Opcode.EXIT, Opcode.NOP):
            assert func_unit(op) is FuncUnit.CTRL


class TestFlags:
    def test_branch_flags(self):
        inst = Instruction(Opcode.BRA, target="x")
        assert inst.is_branch and not inst.is_memory

    def test_memory_flags(self):
        ld = Instruction(Opcode.LD, dst=0, srcs=(1,))
        st = Instruction(Opcode.ST, srcs=(0, 1))
        assert ld.is_memory and ld.is_load
        assert st.is_memory and not st.is_load

    def test_writes_register(self):
        assert Instruction(Opcode.ADD, dst=0, srcs=(1, 2)).writes_register
        assert not Instruction(Opcode.ST, srcs=(0, 1)).writes_register
        assert not Instruction(Opcode.SETP, dst=0, srcs=(1,), cmp=CmpOp.LT).writes_register

    def test_writes_predicate(self):
        assert Instruction(Opcode.SETP, dst=0, srcs=(1,), cmp=CmpOp.LT).writes_predicate
        assert not Instruction(Opcode.ADD, dst=0, srcs=(1, 2)).writes_predicate

    def test_unit_property(self):
        assert Instruction(Opcode.LD, dst=0, srcs=(1,)).unit is FuncUnit.MEM


class TestRepr:
    def test_repr_contains_op_and_regs(self):
        inst = Instruction(Opcode.ADD, dst=3, srcs=(1, 2), pc=7)
        text = repr(inst)
        assert "add" in text and "r3" in text and "[7]" in text

    def test_repr_shows_guard(self):
        inst = Instruction(Opcode.MOV, dst=0, srcs=(1,), pred=2, pred_neg=True, pc=0)
        assert "@!p2" in repr(inst)

    def test_repr_shows_target(self):
        inst = Instruction(Opcode.BRA, target="loop_1", pc=0)
        assert "loop_1" in repr(inst)
