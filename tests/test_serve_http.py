"""End-to-end tests for the simulation service over real sockets.

Each test starts a :class:`repro.serve.ServerThread` — a genuine
``repro serve`` instance with an ephemeral port and real executor
processes — and talks to it through :class:`repro.serve.ServeClient`,
exactly as the ``repro client`` CLI does.  Determinism comes from the
``/queue/pause`` + ``/queue/resume`` endpoints: tests stage the queue
while dispatch is held, then release it, so no assertion depends on
winning a race against the scheduler.
"""

import pytest

from repro.serve import ServeClient, ServeClientError, ServerConfig, ServerThread

SCALE = 0.25  # keep each simulated job well under a second

RUN_SPEC = {"kind": "run", "workload": "synthetic_imbalance",
            "scheme": "rr", "scale": SCALE}


@pytest.fixture
def serve_factory():
    """Start real servers on ephemeral ports; stop them all on teardown."""
    handles = []

    def factory(**overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 1)
        overrides.setdefault("progress_poll", 0.02)
        handle = ServerThread(ServerConfig(**overrides)).start()
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        try:
            handle.stop(drain=False)
        except Exception:
            pass  # already shut down by the test


def spec(**overrides):
    payload = dict(RUN_SPEC)
    payload.update(overrides)
    return payload


class TestBasicApi:
    def test_submit_wait_result(self, serve_factory):
        client = ServeClient(serve_factory().base_url, tenant="t1")
        assert client.healthz() == {"ok": True}

        job, coalesced = client.submit(spec())
        assert not coalesced
        done = client.wait(job["id"], timeout=120)
        assert done["state"] == "done"

        data = client.result(job["id"])
        payload = data["payload"]
        assert payload["kind"] == "run"
        assert payload["workload"] == "synthetic_imbalance"
        assert payload["result"]["cycles"] > 0
        assert "cycles" in payload["summary"]

    def test_result_conflict_until_done(self, serve_factory):
        client = ServeClient(serve_factory().base_url)
        client.pause()
        job, _ = client.submit(spec())
        with pytest.raises(ServeClientError) as exc:
            client.result(job["id"])
        assert exc.value.status == 409

    def test_unknown_job_404(self, serve_factory):
        client = ServeClient(serve_factory().base_url)
        with pytest.raises(ServeClientError) as exc:
            client.status("j999999-deadbeef")
        assert exc.value.status == 404

    def test_bad_payload_400(self, serve_factory):
        client = ServeClient(serve_factory().base_url)
        with pytest.raises(ServeClientError) as exc:
            client.submit({"kind": "run", "workload": "no_such_workload"})
        assert exc.value.status == 400
        with pytest.raises(ServeClientError) as exc:
            client.submit({"kind": "run", "workload": "bfs", "bogus": 1})
        assert exc.value.status == 400

    def test_cancel_queued_job(self, serve_factory):
        client = ServeClient(serve_factory().base_url)
        client.pause()
        job, _ = client.submit(spec())
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        # The SSE stream of a cancelled job terminates immediately.
        kinds = [r["kind"] for r in client.watch(job["id"], timeout=30)]
        assert kinds[-1] == "complete"

    def test_stats_shape(self, serve_factory):
        client = ServeClient(serve_factory().base_url)
        stats = client.stats()
        assert stats["server"]["workers"] == 1
        assert "results" in stats["cache"]
        assert stats["counters"]["submitted"] == 0


class TestCoalescing:
    def test_identical_posts_share_one_execution(self, serve_factory):
        """The tentpole guarantee: N concurrent identical submissions run
        the simulation exactly once, and every subscriber receives the
        identical result payload plus the obs progress records."""
        handle = serve_factory(workers=2)
        clients = [ServeClient(handle.base_url, tenant=f"tenant{i}")
                   for i in range(3)]
        # events=True promises obs records in the SSE feed and is part of
        # the coalescing fingerprint, so all three join the same stream.
        events_spec = spec(events=True)

        clients[0].pause()
        submissions = [c.submit(events_spec) for c in clients]
        ids = {job["id"] for job, _ in submissions}
        assert len(ids) == 1
        assert [coalesced for _, coalesced in submissions] == [
            False, True, True]
        (job_id,) = ids

        # A distinct job (different scheme) must NOT coalesce.
        other, other_coalesced = clients[0].submit(spec(scheme="gto"))
        assert not other_coalesced and other["id"] != job_id

        clients[0].resume()
        streams = [list(c.watch(job_id, timeout=120)) for c in clients]
        clients[0].wait(other["id"], timeout=120)

        # Exactly one worker picked the coalesced job up...
        for records in streams:
            kinds = [r["kind"] for r in records]
            assert kinds.count("started") == 1
            assert "obs" in kinds and "obs_summary" in kinds
            assert kinds[-1] == "complete"
        # ...and every subscriber sees the same record sequence.
        assert streams[0] == streams[1] == streams[2]

        payloads = [c.result(job_id)["payload"] for c in clients]
        assert payloads[0] == payloads[1] == payloads[2]
        assert payloads[0]["result"]["cycles"] > 0

        counters = clients[0].stats()["counters"]
        assert counters["submitted"] == 2       # coalesced job + distinct job
        assert counters["coalesced"] == 2       # two joins
        assert counters["executions"] == 2      # one each, never three

        status = clients[0].status(job_id)
        assert status["waiters"] == 2

    def test_no_coalesce_across_different_events_flag(self, serve_factory):
        client = ServeClient(serve_factory().base_url)
        client.pause()
        a, _ = client.submit(spec(events=True))
        b, coalesced = client.submit(spec(events=False))
        assert not coalesced and a["id"] != b["id"]


class TestPriorityAndQuotas:
    def test_interactive_preempts_batch(self, serve_factory):
        """With one worker and dispatch held, a later interactive job must
        run before an earlier batch job."""
        client = ServeClient(serve_factory(workers=1).base_url)
        client.pause()
        batch, _ = client.submit(spec(scheme="gto", priority="batch"))
        inter, _ = client.submit(spec(priority="interactive"))
        client.resume()
        client.wait(batch["id"], timeout=120)
        done_inter = client.status(inter["id"])
        done_batch = client.status(batch["id"])
        assert done_inter["state"] == done_batch["state"] == "done"
        assert done_inter["started"] < done_batch["started"]

    def test_tenant_quota_429(self, serve_factory):
        handle = serve_factory(tenant_quota=1)
        alice = ServeClient(handle.base_url, tenant="alice")
        bob = ServeClient(handle.base_url, tenant="bob")
        alice.pause()
        alice.submit(spec())
        with pytest.raises(ServeClientError) as exc:
            alice.submit(spec(scheme="gto"))
        assert exc.value.status == 429
        # Other tenants are unaffected, and a coalesced join is free.
        bob.submit(spec(scheme="gto"))
        _, coalesced = alice.submit(spec())
        assert coalesced

    def test_queue_full_503_with_retry_after(self, serve_factory):
        handle = serve_factory(max_queue=2, tenant_quota=100)
        client = ServeClient(handle.base_url)
        client.pause()
        client.submit(spec())
        client.submit(spec(scheme="gto"))
        with pytest.raises(ServeClientError) as exc:
            client.submit(spec(scheme="cawa"))
        assert exc.value.status == 503


class TestShutdown:
    def test_graceful_drain_finishes_jobs(self, serve_factory):
        handle = serve_factory()
        client = ServeClient(handle.base_url)
        job, _ = client.submit(spec())
        ack = client.shutdown(drain=True)
        assert ack["shutting_down"] and ack["drain"]
        handle._thread.join(timeout=120)
        assert not handle._thread.is_alive()
        # The submitted job completed (was not dropped) before exit.
        drained = handle.server.queue.jobs[job["id"]]
        assert drained.state == "done"
        assert drained.result["result"]["cycles"] > 0

    def test_drain_releases_paused_queue(self, serve_factory):
        handle = serve_factory()
        client = ServeClient(handle.base_url)
        client.pause()
        job, _ = client.submit(spec())
        client.shutdown(drain=True)
        handle._thread.join(timeout=120)
        assert handle.server.queue.jobs[job["id"]].state == "done"
