"""Tests for the set-associative cache and replacement policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.memory.cache import Cache
from repro.memory.replacement import (
    LRUPolicy,
    RRPV_MAX,
    SHiPPolicy,
    SRRIPPolicy,
    make_policy,
)
from repro.memory.request import MemRequest, make_signature


def req(line_addr, pc=0, critical=False, load=True, cycle=0.0):
    return MemRequest(
        line_addr=line_addr,
        pc=pc,
        warp_key=(0, 0, 0),
        is_load=load,
        is_critical=critical,
        cycle=cycle,
        signature=make_signature(pc, line_addr),
    )


def small_cache(policy="lru", sets=2, ways=2):
    cfg = CacheConfig(sets=sets, ways=ways, line_size=128)
    return Cache(cfg, make_policy(policy))


class TestBasicBehaviour:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(req(0)) is False
        assert cache.access(req(0)) is True
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_different_sets_dont_conflict(self):
        cache = small_cache()
        cache.access(req(0))       # set 0
        cache.access(req(128))     # set 1
        assert cache.access(req(0)) is True
        assert cache.access(req(128)) is True

    def test_lru_eviction_order(self):
        cache = small_cache()  # 2 ways per set
        a, b, c = 0, 256, 512  # all map to set 0
        cache.access(req(a))
        cache.access(req(b))
        cache.access(req(a))  # a is MRU now
        cache.access(req(c))  # evicts b
        assert cache.access(req(a)) is True
        assert cache.access(req(b)) is False

    def test_eviction_stats(self):
        cache = small_cache()
        for i in range(3):
            cache.access(req(i * 256))  # same set, 3 lines, 2 ways
        assert cache.stats.evictions == 1
        assert cache.stats.zero_reuse_evictions == 1

    def test_critical_stats_tracked(self):
        cache = small_cache()
        cache.access(req(0, critical=True))
        cache.access(req(0, critical=True))
        cache.access(req(128, critical=False))
        assert cache.stats.critical_accesses == 2
        assert cache.stats.critical_hits == 1
        assert cache.stats.critical_hit_rate == 0.5

    def test_lookup_has_no_side_effects(self):
        cache = small_cache()
        cache.access(req(0))
        before = cache.stats.accesses
        assert cache.lookup(0) is not None
        assert cache.lookup(128) is None
        assert cache.stats.accesses == before

    def test_invalidate_all(self):
        cache = small_cache()
        cache.access(req(0))
        cache.invalidate_all()
        assert cache.lookup(0) is None
        assert cache.occupancy() == 0.0

    def test_observer_callbacks(self):
        cache = small_cache()
        events = []

        class Obs:
            def on_access(self, request, hit, line):
                events.append(("access", hit))

            def on_evict(self, line):
                events.append(("evict", line.line_addr))

        cache.observers.append(Obs())
        cache.access(req(0))
        cache.access(req(0))
        cache.access(req(256))
        cache.access(req(512))  # evicts
        kinds = [e[0] for e in events]
        assert kinds.count("access") == 4
        assert kinds.count("evict") == 1


class TestSRRIP:
    def test_insert_long_promote_near(self):
        cache = small_cache("srrip")
        cache.access(req(0))
        line = cache.lookup(0)
        assert line.rrpv == 2
        cache.access(req(0))
        assert line.rrpv == 0

    def test_victim_prefers_distant(self):
        cache = small_cache("srrip")
        cache.access(req(0))
        cache.access(req(256))
        cache.access(req(0))  # promote line 0 to rrpv 0
        cache.access(req(512))  # must evict line 256 (older rrpv)
        assert cache.lookup(0) is not None
        assert cache.lookup(256) is None


class TestSHiP:
    def test_learns_no_reuse_signature(self):
        policy = SHiPPolicy(table_size=16, initial=1)
        cfg = CacheConfig(sets=1, ways=2, line_size=128)
        cache = Cache(cfg, policy)
        # Stream many distinct lines with the same pc: all evicted with no
        # reuse -> signature trained towards zero -> distant insertion.
        for i in range(8):
            cache.access(req(i * 128, pc=7))
        sig_counters = set()
        for i in range(8):
            sig = make_signature(7, i * 128)
            sig_counters.add(policy.table[policy._index(sig)])
        assert 0 in sig_counters  # at least one signature flipped to no-reuse

    def test_reuse_keeps_long_insertion(self):
        policy = SHiPPolicy(table_size=16, initial=1)
        assert policy.insertion_rrpv(3) == 2
        policy.train_no_reuse(3)
        assert policy.insertion_rrpv(3) == RRPV_MAX
        policy.train_hit(3)
        assert policy.insertion_rrpv(3) == 2


class TestPolicyRegistry:
    def test_make_policy_names(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("srrip"), SRRIPPolicy)
        assert isinstance(make_policy("ship"), SHiPPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("mru")


class _RefLRU:
    """Reference model: per-set ordered list."""

    def __init__(self, sets, ways, line_size):
        self.sets = [[] for _ in range(sets)]
        self.ways = ways
        self.line_size = line_size
        self.nsets = sets

    def access(self, line_addr):
        idx = (line_addr // self.line_size) % self.nsets
        s = self.sets[idx]
        if line_addr in s:
            s.remove(line_addr)
            s.append(line_addr)
            return True
        s.append(line_addr)
        if len(s) > self.ways:
            s.pop(0)
        return False


@settings(max_examples=40, deadline=None)
@given(
    addrs=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=200),
)
def test_prop_lru_matches_reference_model(addrs):
    cfg = CacheConfig(sets=2, ways=4, line_size=128)
    cache = Cache(cfg, LRUPolicy())
    ref = _RefLRU(2, 4, 128)
    for token in addrs:
        line_addr = token * 128
        assert cache.access(req(line_addr)) == ref.access(line_addr)
