"""Property-based tests: random structured kernels must run correctly.

Hypothesis generates random (but well-formed, by construction) kernels with
nested if/else and bounded loops over per-thread data; we execute them on
the simulator and on a straightforward per-thread Python interpreter and
require identical results.  This exercises the SIMT stack, scoreboard, and
executor against thousands of control-flow shapes no hand-written test
would cover.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import GPU, GPUConfig, KernelBuilder
from repro.isa.instructions import CmpOp, Special


class _ProgramSpec:
    """A recipe for one random structured kernel."""

    def __init__(self, ops):
        self.ops = ops  # list of ("op", params) tuples, possibly nested

    def __repr__(self):
        return f"_ProgramSpec({self.ops!r})"


_leaf_ops = st.sampled_from(["add", "mul", "sub"])


@st.composite
def _blocks(draw, depth=0):
    """A list of statements; nested ifs/loops up to depth 2."""
    statements = []
    count = draw(st.integers(1, 3))
    for _ in range(count):
        if depth < 2 and draw(st.booleans()):
            kind = draw(st.sampled_from(["if", "ifelse", "loop"]))
            threshold = draw(st.floats(0.1, 0.9))
            body = draw(_blocks(depth + 1))
            if kind == "ifelse":
                other = draw(_blocks(depth + 1))
                statements.append(("ifelse", threshold, body, other))
            elif kind == "if":
                statements.append(("if", threshold, body))
            else:
                trips = draw(st.integers(1, 4))
                statements.append(("loop", trips, body))
        else:
            op = draw(_leaf_ops)
            const = draw(st.floats(-4, 4).map(lambda x: round(x, 3)))
            statements.append((op, const))
    return statements


def _emit(b, statements, acc, x, pred_pool):
    for statement in statements:
        kind = statement[0]
        if kind in ("add", "mul", "sub"):
            getattr(b, kind)(acc, acc, statement[1])
        elif kind == "if":
            _, threshold, body = statement
            p = b.pred()
            b.setp(p, CmpOp.GT, x, threshold)
            with b.if_then(p):
                _emit(b, body, acc, x, pred_pool)
        elif kind == "ifelse":
            _, threshold, body, other = statement
            p = b.pred()
            b.setp(p, CmpOp.GT, x, threshold)
            frame = b.begin_if(p)
            _emit(b, body, acc, x, pred_pool)
            b.begin_else(frame)
            _emit(b, other, acc, x, pred_pool)
            b.end_if(frame)
        elif kind == "loop":
            _, trips, body = statement
            counter = b.const(0.0)
            done = b.pred()
            with b.loop() as lp:
                b.setp(done, CmpOp.GE, counter, float(trips))
                lp.break_if(done)
                _emit(b, body, acc, x, pred_pool)
                b.add(counter, counter, 1.0)


def _interpret(statements, acc, x):
    for statement in statements:
        kind = statement[0]
        if kind == "add":
            acc = acc + statement[1]
        elif kind == "mul":
            acc = acc * statement[1]
        elif kind == "sub":
            acc = acc - statement[1]
        elif kind == "if":
            _, threshold, body = statement
            if x > threshold:
                acc = _interpret(body, acc, x)
        elif kind == "ifelse":
            _, threshold, body, other = statement
            acc = _interpret(body if x > threshold else other, acc, x)
        elif kind == "loop":
            _, trips, body = statement
            for _ in range(trips):
                acc = _interpret(body, acc, x)
    return acc


@settings(max_examples=40, deadline=None)
@given(statements=_blocks(), seed=st.integers(0, 2**31 - 1))
def test_prop_random_structured_kernels(statements, seed):
    n = 64
    rng = np.random.RandomState(seed)
    inputs = rng.rand(n).round(3)

    gpu = GPU(GPUConfig.default_sim(num_sms=1))
    src = gpu.memory.alloc_array(inputs)
    dst = gpu.memory.alloc_array(np.zeros(n))

    b = KernelBuilder("prop")
    tid = b.sreg(Special.GTID)
    x = b.ld(b.addr(tid, base=src, scale=8))
    acc = b.const(1.0)
    _emit(b, statements, acc, x, [])
    b.st(b.addr(tid, base=dst, scale=8), acc)
    kernel = b.build()

    gpu.launch(kernel, grid_dim=1, block_dim=n)
    out = gpu.memory.read_array(dst, n)
    expected = np.array([_interpret(statements, 1.0, xi) for xi in inputs])
    assert np.allclose(out, expected, rtol=1e-12), statements


@settings(max_examples=20, deadline=None)
@given(
    trip_counts=st.lists(st.integers(0, 12), min_size=64, max_size=64),
)
def test_prop_divergent_loops_terminate_correctly(trip_counts):
    """Per-lane loop bounds: every lane runs exactly its own trip count."""
    n = 64
    trips = np.array(trip_counts, dtype=float)
    gpu = GPU(GPUConfig.default_sim(num_sms=1))
    tb = gpu.memory.alloc_array(trips)
    ob = gpu.memory.alloc_array(np.zeros(n))

    b = KernelBuilder("divloop")
    tid = b.sreg(Special.GTID)
    limit = b.ld(b.addr(tid, base=tb, scale=8))
    count = b.const(0.0)
    done = b.pred()
    with b.loop() as lp:
        b.setp(done, CmpOp.GE, count, limit)
        lp.break_if(done)
        b.add(count, count, 1.0)
    b.st(b.addr(tid, base=ob, scale=8), count)
    gpu.launch(b.build(), grid_dim=1, block_dim=n)
    assert np.array_equal(gpu.memory.read_array(ob, n), trips)
