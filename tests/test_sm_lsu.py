"""Tests for the load-store unit: coalescing and access timing."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.isa.instructions import Instruction, MemSpace, Opcode
from repro.isa.kernel import KernelBuilder
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mshr import MSHRFile
from repro.memory.replacement import make_policy
from repro.simt.block import ThreadBlock
from repro.simt.mask import full_mask
from repro.simt.warp import Warp
from repro.sm.lsu import LoadStoreUnit


@pytest.fixture
def env():
    config = GPUConfig.default_sim()
    hierarchy = MemoryHierarchy(config)
    l1 = Cache(config.l1d, make_policy("lru"))
    mshr = MSHRFile(config.l1d.mshr_entries)
    lsu = LoadStoreUnit(0, l1, mshr, hierarchy)
    b = KernelBuilder("t")
    b.nop()
    kernel = b.build()
    block = ThreadBlock(0, 32, 1, kernel, 32)
    warp = Warp(0, block, 32, 4, 2, dynamic_id=0)
    block.warps.append(warp)
    return config, lsu, warp


def load_inst(pc=0):
    return Instruction(Opcode.LD, dst=0, srcs=(1,), imm=0.0, pc=pc)


class TestCoalescing:
    def test_consecutive_words_coalesce(self, env):
        _, lsu, _ = env
        addrs = np.arange(32, dtype=np.int64) * 8  # 256B = 2 lines
        assert lsu.coalesce(addrs, full_mask(32)) == [0, 128]

    def test_same_address_broadcast_is_one_line(self, env):
        _, lsu, _ = env
        addrs = np.zeros(32, dtype=np.int64)
        assert lsu.coalesce(addrs, full_mask(32)) == [0]

    def test_strided_access_explodes(self, env):
        _, lsu, _ = env
        addrs = np.arange(32, dtype=np.int64) * 128  # one line per lane
        assert len(lsu.coalesce(addrs, full_mask(32))) == 32

    def test_mask_restricts_lanes(self, env):
        _, lsu, _ = env
        addrs = np.arange(32, dtype=np.int64) * 128
        assert len(lsu.coalesce(addrs, 0b1)) == 1


class TestIssueTiming:
    def test_zero_mask_is_cheap(self, env):
        _, lsu, warp = env
        completion, lines = lsu.issue(warp, load_inst(), np.zeros(32, dtype=np.int64),
                                      0, 10.0, False)
        assert lines == 0
        assert completion == 11.0

    def test_shared_space_fixed_latency(self, env):
        _, lsu, warp = env
        inst = Instruction(Opcode.LD, dst=0, srcs=(1,), imm=0.0,
                           space=MemSpace.SHARED, pc=0)
        completion, lines = lsu.issue(warp, inst, np.zeros(32, dtype=np.int64),
                                      full_mask(32), 10.0, False)
        assert lines == 0
        assert completion == 10.0 + lsu.shared_latency

    def test_more_lines_take_longer(self, env):
        config, lsu, warp = env
        one_line = np.zeros(32, dtype=np.int64)
        c1, n1 = lsu.issue(warp, load_inst(), one_line, full_mask(32), 0.0, False)
        assert n1 == 1
        # New LSU for a clean queue.
        hierarchy = MemoryHierarchy(config)
        l1 = Cache(config.l1d, make_policy("lru"))
        lsu2 = LoadStoreUnit(0, l1, MSHRFile(32), hierarchy)
        scattered = np.arange(32, dtype=np.int64) * 128
        c32, n32 = lsu2.issue(warp, load_inst(), scattered, full_mask(32), 0.0, False)
        assert n32 == 32
        assert c32 > c1

    def test_l1_hit_completion_is_fast(self, env):
        config, lsu, warp = env
        addrs = np.zeros(32, dtype=np.int64)
        lsu.issue(warp, load_inst(), addrs, full_mask(32), 0.0, False)
        completion, _ = lsu.issue(warp, load_inst(), addrs, full_mask(32), 1000.0, False)
        assert completion <= 1000.0 + config.l1d.hit_latency + 1

    def test_stats_track_misses(self, env):
        _, lsu, warp = env
        addrs = np.arange(32, dtype=np.int64) * 128
        lsu.issue(warp, load_inst(), addrs, full_mask(32), 0.0, False)
        assert lsu.global_accesses == 1
        assert lsu.line_accesses == 32
        assert lsu.l1_misses == 32

    def test_critical_flag_propagates(self, env):
        _, lsu, warp = env
        addrs = np.zeros(32, dtype=np.int64)
        lsu.issue(warp, load_inst(), addrs, full_mask(32), 0.0, True)
        assert lsu.l1d.stats.critical_accesses == 1
