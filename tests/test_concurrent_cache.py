"""Multi-process hammer tests for the shared ``.repro_cache/`` stores.

The serve executor pool, parallel sweeps, and any number of independent
CLI invocations all share one cache directory.  These tests race real
processes — writers replacing entries, readers loading them, and a
garbage collector deleting them — against the result cache and the trace
store simultaneously, and assert the concurrency contract:

* a reader sees either a complete, valid entry or a clean miss — never a
  torn file, never an exception;
* writers never fail, even while GC is unlinking around them;
* concurrent GC runs never race each other (the advisory directory lock)
  and never break subsequent reads/writes.

The tier-1 variant keeps the process count and iteration budget small;
``-m slow`` runs the heavy version.
"""

import multiprocessing
import traceback

import pytest

from repro.experiments import result_cache
from repro.experiments.runner import run_scheme
from repro.stats.counters import RunResult
from repro.trace import store as trace_store
from repro.trace.format import TraceProgram

SCALE = 0.25


def _ctx():
    # Fork keeps worker start-up cheap and inherits the parent's
    # REPRO_CACHE_DIR isolation; it is always available on the POSIX
    # platforms these stores target (fslock degrades to no-op elsewhere).
    return multiprocessing.get_context("fork")


# ----------------------------------------------------------------------
# Worker bodies (top-level so they pickle under any start method)
# ----------------------------------------------------------------------
def _result_writer(cache_dir, seed, keys, rounds, errors):
    try:
        result_cache.set_cache_dir(cache_dir)
        result = RunResult.from_dict(seed)
        for i in range(rounds):
            result_cache.store(keys[i % len(keys)], result)
    except Exception:
        errors.put("writer: " + traceback.format_exc())


def _result_reader(cache_dir, expected_cycles, keys, rounds, errors):
    try:
        result_cache.set_cache_dir(cache_dir)
        hits = 0
        for i in range(rounds):
            result = result_cache.load(keys[i % len(keys)])
            if result is not None:
                hits += 1
                if result.cycles != expected_cycles:
                    raise AssertionError(
                        f"torn read: cycles {result.cycles} != "
                        f"{expected_cycles}"
                    )
        errors.put(f"hits:{hits}")
    except Exception:
        errors.put("reader: " + traceback.format_exc())


def _result_gc(cache_dir, keep, rounds, errors):
    try:
        result_cache.set_cache_dir(cache_dir)
        for i in range(rounds):
            # Alternate blocking and non-blocking acquisition so both
            # paths race the other collector process.
            result_cache.gc(max_entries=keep, blocking=bool(i % 2))
    except Exception:
        errors.put("gc: " + traceback.format_exc())


def _trace_writer(cache_dir, fingerprint, names, rounds, errors):
    try:
        result_cache.set_cache_dir(cache_dir)
        program = TraceProgram(
            functional_fingerprint=fingerprint,
            workload="hammer", scale=SCALE,
        )
        directory = trace_store.trace_dir()
        for i in range(rounds):
            path = directory / f"{names[i % len(names)]}.trace"
            program.save(path)
    except Exception:
        errors.put("trace-writer: " + traceback.format_exc())


def _trace_reader(cache_dir, fingerprint, names, rounds, errors):
    from repro.errors import TraceError

    try:
        result_cache.set_cache_dir(cache_dir)
        directory = trace_store.trace_dir()
        hits = 0
        for i in range(rounds):
            path = directory / f"{names[i % len(names)]}.trace"
            try:
                program = TraceProgram.load(path, fingerprint)
            except FileNotFoundError:
                continue  # GC got there first: a clean miss
            except TraceError as exc:
                raise AssertionError(f"torn trace read: {exc}")
            hits += 1
            if program.workload != "hammer":
                raise AssertionError("trace content corrupted")
        errors.put(f"hits:{hits}")
    except Exception:
        errors.put("trace-reader: " + traceback.format_exc())


def _trace_gc(cache_dir, keep, rounds, errors):
    try:
        result_cache.set_cache_dir(cache_dir)
        for i in range(rounds):
            trace_store.gc(max_entries=keep, blocking=bool(i % 2))
    except Exception:
        errors.put("trace-gc: " + traceback.format_exc())


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _run_procs(procs, errors, expect_reports):
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=300)
    reports = []
    while not errors.empty():
        reports.append(errors.get_nowait())
    failures = [r for r in reports if not r.startswith("hits:")]
    assert not failures, "\n".join(failures)
    assert all(proc.exitcode == 0 for proc in procs)
    assert len(reports) == expect_reports


def _hammer(tmp_path, writers, readers, collectors, rounds):
    """Race writers/readers/GC over both stores in one process melee."""
    cache_dir = str(tmp_path / "hammer_cache")
    seed_result = run_scheme("synthetic_imbalance", "rr", scale=SCALE)
    seed = seed_result.to_dict()
    keys = [f"hammer-rr-{i:04d}" for i in range(8)]
    names = [f"hammer{i:04d}" for i in range(8)]
    fingerprint = "f" * 16
    keep = len(keys) // 2

    ctx = _ctx()
    errors = ctx.Queue()
    procs = []
    for _ in range(writers):
        procs.append(ctx.Process(target=_result_writer, args=(
            cache_dir, seed, keys, rounds, errors)))
        procs.append(ctx.Process(target=_trace_writer, args=(
            cache_dir, fingerprint, names, rounds, errors)))
    for _ in range(readers):
        procs.append(ctx.Process(target=_result_reader, args=(
            cache_dir, seed_result.cycles, keys, rounds, errors)))
        procs.append(ctx.Process(target=_trace_reader, args=(
            cache_dir, fingerprint, names, rounds, errors)))
    for _ in range(collectors):
        procs.append(ctx.Process(target=_result_gc, args=(
            cache_dir, keep, max(1, rounds // 4), errors)))
        procs.append(ctx.Process(target=_trace_gc, args=(
            cache_dir, keep, max(1, rounds // 4), errors)))

    _run_procs(procs, errors, expect_reports=2 * readers)

    # The melee settles into a consistent state: every surviving entry
    # loads cleanly and a final bounded GC leaves exactly `keep` files.
    result_cache.set_cache_dir(cache_dir)
    try:
        for key in keys:
            result = result_cache.load(key)
            assert result is None or result.cycles == seed_result.cycles
        result_cache.gc(max_entries=keep)
        trace_store.gc(max_entries=keep)
        assert result_cache.stats()["entries"] <= keep
        assert trace_store.stats()["entries"] <= keep
        result_cache.gc(max_entries=0)
        trace_store.gc(max_entries=0)
        assert result_cache.stats()["entries"] == 0
        assert trace_store.stats()["entries"] == 0
    finally:
        result_cache.set_cache_dir(None)


class TestConcurrentCacheHammer:
    def test_hammer_fast(self, tmp_path):
        _hammer(tmp_path, writers=1, readers=1, collectors=1, rounds=80)

    @pytest.mark.slow
    def test_hammer_heavy(self, tmp_path):
        _hammer(tmp_path, writers=3, readers=3, collectors=2, rounds=600)


class TestGcSemantics:
    """Single-process checks of the lock-safe GC contract."""

    def test_gc_respects_max_entries(self, tmp_path):
        result_cache.set_cache_dir(tmp_path / "c")
        try:
            result = run_scheme("synthetic_imbalance", "rr", scale=SCALE)
            for i in range(5):
                result_cache.store(f"k{i}", result)
            removed = result_cache.gc(max_entries=2)
            assert removed == 3
            assert result_cache.stats()["entries"] == 2
        finally:
            result_cache.set_cache_dir(None)

    def test_gc_max_age(self, tmp_path):
        import os
        import time

        result_cache.set_cache_dir(tmp_path / "c")
        try:
            result = run_scheme("synthetic_imbalance", "rr", scale=SCALE)
            result_cache.store("old", result)
            result_cache.store("new", result)
            old_path = result_cache.cache_dir() / "old.json"
            past = time.time() - 3600
            os.utime(old_path, (past, past))
            removed = result_cache.gc(max_age_seconds=60)
            assert removed == 1
            assert result_cache.load("new") is not None
            assert result_cache.load("old") is None
        finally:
            result_cache.set_cache_dir(None)

    def test_nonblocking_gc_skips_when_locked(self, tmp_path):
        from repro import fslock

        result_cache.set_cache_dir(tmp_path / "c")
        try:
            result = run_scheme("synthetic_imbalance", "rr", scale=SCALE)
            for i in range(4):
                result_cache.store(f"k{i}", result)
            lock = fslock.lock_path(result_cache.cache_dir())
            with fslock.locked(lock):
                # Another collector holds the lock: the non-blocking
                # path yields instead of deadlocking or double-deleting.
                assert result_cache.gc(max_entries=0, blocking=False) == 0
            assert result_cache.gc(max_entries=0, blocking=False) == 4
        finally:
            result_cache.set_cache_dir(None)

    def test_gc_on_missing_directory(self, tmp_path):
        result_cache.set_cache_dir(tmp_path / "nowhere")
        try:
            assert result_cache.gc(max_entries=0) == 0
            assert trace_store.gc(max_entries=0) == 0
        finally:
            result_cache.set_cache_dir(None)
