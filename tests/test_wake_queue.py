"""Unit tests for the event-driven core's wake-queue machinery.

Covers the three hazard paths called out in the design: stale heap entries
(lazy invalidation), barrier releases re-queuing parked warps, and MSHR
back-pressure keeping operand-ready warps in the ready pool until an entry
frees up.
"""

import heapq

import numpy as np
import pytest

from repro import GPU, GPUConfig, KernelBuilder
from repro.config import CacheConfig
from repro.isa.instructions import CmpOp, Special
from repro.simt.block import ThreadBlock
from repro.simt.warp import WarpStatus


def alu_kernel(steps=4):
    """Straight-line ALU work: no memory, no divergence."""
    b = KernelBuilder("alu")
    x = b.const(0.0)
    for _ in range(steps):
        b.add(x, x, 1.0)
    return b.build()


def barrier_kernel():
    """Two ALU phases separated by a block-wide barrier."""
    b = KernelBuilder("barrier")
    x = b.const(0.0)
    b.add(x, x, 1.0)
    b.bar()
    b.add(x, x, 1.0)
    return b.build()


def scattered_load_kernel(n, base, out_base, passes=4):
    """One distinct cache line per lane per pass: heavy MSHR pressure."""
    b = KernelBuilder("scatter")
    tid = b.sreg(Special.GTID)
    acc = b.const(0.0)
    p = b.const(0.0)
    addr = b.reg()
    b.mad(addr, tid, 128.0, b.const(float(base)))
    done = b.pred()
    with b.loop() as lp:
        b.setp(done, CmpOp.GE, p, float(passes))
        lp.break_if(done)
        x = b.ld(addr)
        b.add(acc, acc, x)
        b.add(addr, addr, float(n * 128))
        b.add(p, p, 1.0)
    b.st(b.addr(tid, base=out_base, scale=8), acc)
    return b.build()


def make_sm(num_warps=2):
    """One event-core SM with ``num_warps`` resident ALU warps at cycle 0."""
    gpu = GPU(GPUConfig.default_sim(num_sms=1, num_schedulers_per_sm=1))
    sm = gpu.sms[0]
    kernel = alu_kernel()
    block = ThreadBlock(0, 32 * num_warps, 1, kernel, warp_size=32)
    sm.add_block(block, now=0.0)
    return sm, block


class TestWakeQueueInvariants:
    def test_dispatch_queues_each_warp_once(self):
        sm, block = make_sm(num_warps=3)
        heap = sm._wake_heaps[0]
        assert len(heap) == 3
        assert all(w._queued for w in block.warps)
        # Re-enqueueing is idempotent: no duplicate entries.
        for warp in block.warps:
            sm._enqueue(warp)
        assert len(heap) == 3

    def test_warp_in_at_most_one_structure(self):
        sm, block = make_sm(num_warps=3)
        for cycle in range(6):
            sm.tick(float(cycle))
            queued = [e[2] for e in sm._wake_heaps[0]]
            pooled = [e[1] for e in sm._ready_pools[0]]
            for warp in block.warps:
                if warp.status is WarpStatus.RUNNING:
                    assert (warp in queued) + (warp in pooled) <= 1
                    assert warp._queued == (warp in queued)

    def test_stale_finished_entry_is_invalidated(self):
        sm, block = make_sm(num_warps=2)
        warp = block.warps[0]
        # Forge a stale heap entry for a warp that then finishes.
        warp.status = WarpStatus.FINISHED
        warp._queued = True  # simulate an entry left behind
        sm.tick(0.0)
        # The stale entry was popped and dropped, never pooled.
        assert warp not in [e[2] for e in sm._wake_heaps[0]]
        assert warp not in [e[1] for e in sm._ready_pools[0]]
        assert not warp._queued

    def test_early_entry_is_requeued_at_fresh_wake_time(self):
        sm, block = make_sm(num_warps=1)
        warp = block.warps[0]
        assert sm.tick(0.0)  # first issue; warp re-queued for cycle >= 1
        heap = sm._wake_heaps[0]
        true_wake = heap[0][0]
        assert true_wake > 0.0
        # Forge an entry claiming the warp is ready *now*.
        heapq.heappop(heap)
        heapq.heappush(heap, (0.0, warp.dynamic_id, warp))
        assert not sm.tick(0.0)  # nothing actually ready
        # Lazy revalidation pushed it back at its true wake time.
        assert heap[0][0] == true_wake
        assert warp._queued
        assert not sm._ready_pools[0]

    def test_unfinished_counter_tracks_busy(self):
        sm, block = make_sm(num_warps=2)
        assert sm.busy and sm._unfinished == 2
        cycle = 0.0
        while sm.busy and cycle < 1000:
            sm.tick(cycle)
            cycle = max(cycle + 1.0, sm.next_wake_time(cycle))
        assert not sm.busy and sm._unfinished == 0
        assert all(w.status is WarpStatus.FINISHED for w in block.warps)


class TestBarrierWake:
    def test_barrier_release_requeues_parked_warps(self):
        gpu = GPU(GPUConfig.default_sim(num_sms=1, num_schedulers_per_sm=1))
        sm = gpu.sms[0]
        block = ThreadBlock(0, 64, 1, barrier_kernel(), warp_size=32)
        sm.add_block(block, now=0.0)
        cycle = 0.0
        saw_parked = False
        while sm.busy and cycle < 1000:
            sm.tick(cycle)
            for warp in block.warps:
                if warp.status is WarpStatus.AT_BARRIER:
                    saw_parked = True
                    # Parked warps sit in neither wake structure.
                    assert warp not in [e[2] for e in sm._wake_heaps[0]]
                    assert warp not in [e[1] for e in sm._ready_pools[0]]
            cycle = max(cycle + 1.0, sm.next_wake_time(cycle))
        assert saw_parked, "barrier kernel never parked a warp"
        assert not sm.busy
        assert sm.stats.barriers == 2

    def test_barrier_cycles_match_scan_core(self):
        def run(core):
            cfg = GPUConfig.default_sim(
                num_sms=1, num_schedulers_per_sm=1
            ).with_issue_core(core)
            gpu = GPU(cfg)
            return gpu.launch(barrier_kernel(), 1, 64).cycles

        assert run("event") == run("scan")


class TestMSHRBackPressure:
    def _run(self, core):
        cfg = GPUConfig.default_sim(
            num_sms=1,
            l1d=CacheConfig(sets=8, ways=16, line_size=128, mshr_entries=2),
        ).with_issue_core(core)
        gpu = GPU(cfg)
        n = 64
        words = n * 16 * 4 + n
        data = gpu.memory.alloc_array(np.ones(words))
        out = gpu.memory.alloc_array(np.zeros(n))
        result = gpu.launch(scattered_load_kernel(n, data, out), 1, n)
        return gpu.sms[0], result

    def test_mshr_gated_warps_wait_in_pool_and_wake(self):
        sm, result = self._run("event")
        # Back-pressure must actually have engaged...
        assert sm.mshr.stall_inducing_misses > 0
        # ...and every warp still ran to completion (gated warps woke up).
        assert result.cycles > 0
        assert not sm.busy
        assert not any(sm._wake_heaps[0]) and not any(sm._ready_pools[0])

    def test_mshr_pressure_cycles_match_scan_core(self):
        _, event_result = self._run("event")
        _, scan_result = self._run("scan")
        assert event_result.cycles == scan_result.cycles
        assert event_result.l1_stats.misses == scan_result.l1_stats.misses
