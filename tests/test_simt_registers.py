"""Tests for the warp register file and its scoreboard."""

import numpy as np

from repro.simt.registers import WarpRegisterFile


def make_rf():
    return WarpRegisterFile(num_regs=8, num_preds=2, warp_size=32)


class TestValues:
    def test_write_respects_mask(self):
        rf = make_rf()
        mask = np.zeros(32, dtype=bool)
        mask[:4] = True
        rf.write(0, np.full(32, 9.0), mask)
        assert np.all(rf.read(0)[:4] == 9.0)
        assert np.all(rf.read(0)[4:] == 0.0)

    def test_pred_write_respects_mask(self):
        rf = make_rf()
        mask = np.zeros(32, dtype=bool)
        mask[::2] = True
        rf.write_pred(0, np.ones(32, dtype=bool), mask)
        assert np.array_equal(rf.read_pred(0), mask)


class TestScoreboard:
    def test_operands_ready_takes_max(self):
        rf = make_rf()
        rf.set_reg_ready(0, 10.0)
        rf.set_reg_ready(1, 20.0)
        assert rf.operands_ready_at((0, 1), None, None) == 20.0

    def test_dst_waw_counts(self):
        rf = make_rf()
        rf.set_reg_ready(2, 30.0)
        assert rf.operands_ready_at((0,), 2, None) == 30.0

    def test_pred_operand_counts(self):
        rf = make_rf()
        rf.set_pred_ready(1, 15.0)
        assert rf.operands_ready_at((), None, 1) == 15.0

    def test_pred_dst_uses_pred_board(self):
        rf = make_rf()
        rf.set_pred_ready(0, 40.0)
        assert rf.operands_ready_at((), 0, None, pred_is_dst=True) == 40.0

    def test_detail_reports_load_provenance(self):
        rf = make_rf()
        rf.set_reg_ready(0, 50.0, from_load=True)
        rf.set_reg_ready(1, 10.0, from_load=False)
        ready, by_load = rf.operands_ready_detail((0, 1), None, None)
        assert ready == 50.0 and by_load

    def test_detail_alu_limited(self):
        rf = make_rf()
        rf.set_reg_ready(0, 5.0, from_load=True)
        rf.set_reg_ready(1, 60.0, from_load=False)
        ready, by_load = rf.operands_ready_detail((0, 1), None, None)
        assert ready == 60.0 and not by_load

    def test_load_flag_cleared_by_alu_write(self):
        rf = make_rf()
        rf.set_reg_ready(0, 50.0, from_load=True)
        rf.set_reg_ready(0, 60.0, from_load=False)
        ready, by_load = rf.operands_ready_detail((0,), None, None)
        assert ready == 60.0 and not by_load

    def test_pred_limited_is_not_load(self):
        rf = make_rf()
        rf.set_reg_ready(0, 5.0, from_load=True)
        rf.set_pred_ready(0, 99.0)
        ready, by_load = rf.operands_ready_detail((0,), None, 0)
        assert ready == 99.0 and not by_load
