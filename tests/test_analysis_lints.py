"""Lint rule catalogue tests (``repro.analysis.lints``).

The heart of this file is the broken-kernel fixture suite: one deliberately
corrupted kernel per rule, each triggering **exactly** that rule — both a
positive test (the rule fires) and a precision test (no other rule
misfires on the same kernel).
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.analysis import RULES, Severity, lint_kernel
from repro.isa.instructions import (
    CmpOp,
    Instruction,
    MemSpace,
    Opcode,
    Special,
)
from repro.isa.kernel import Kernel, KernelBuilder


def raw_kernel(name, instrs, *, num_regs=4, num_preds=2, shared_mem_bytes=0):
    """Bypass the builder AND ``validate_kernel`` (fixtures are broken)."""
    resolved = [replace(inst, pc=pc) for pc, inst in enumerate(instrs)]
    return Kernel(
        name=name,
        instructions=resolved,
        labels={},
        num_regs=num_regs,
        num_preds=num_preds,
        shared_mem_bytes=shared_mem_bytes,
    )


def _setp_const(dst=0):
    """SETP with an immediate-only comparison: reads no registers."""
    return Instruction(Opcode.SETP, dst=dst, imm=1.0, cmp=CmpOp.EQ)


# ----------------------------------------------------------------------
# One broken kernel per rule
# ----------------------------------------------------------------------
def kernel_cfg001():
    """Unreachable block: pc 1 sits behind an unconditional jump."""
    return raw_kernel(
        "bad_cfg001",
        [
            Instruction(Opcode.BRA, target_pc=2),
            Instruction(Opcode.NOP),
            Instruction(Opcode.EXIT),
        ],
    )


def kernel_cfg002():
    """Backward reconvergence PC: the SIMT stack would never pop."""
    return raw_kernel(
        "bad_cfg002",
        [
            Instruction(Opcode.RECONV),
            _setp_const(),
            Instruction(Opcode.BRA, pred=0, target_pc=3, reconv_pc=0),
            Instruction(Opcode.EXIT),
        ],
    )


def kernel_cfg003():
    """Fall-through path enters an inescapable loop: no path to EXIT."""
    return raw_kernel(
        "bad_cfg003",
        [
            _setp_const(),
            Instruction(Opcode.BRA, pred=0, target_pc=4, reconv_pc=4),
            Instruction(Opcode.NOP),
            Instruction(Opcode.BRA, target_pc=2),
            Instruction(Opcode.RECONV),
            Instruction(Opcode.EXIT),
        ],
    )


def kernel_cfg004():
    """Inner reconvergence PC reachable without executing the inner branch.

    The outer branch jumps straight to pc 7, which is also the *inner*
    branch's reconvergence point — so the inner SIMT stack entry may never
    be popped even though every region is well nested (no CFG002).
    """
    return raw_kernel(
        "bad_cfg004",
        [
            _setp_const(),
            Instruction(Opcode.BRA, pred=0, target_pc=7, reconv_pc=9),
            Instruction(Opcode.BRA, pred=0, target_pc=5, reconv_pc=7),
            Instruction(Opcode.NOP),
            Instruction(Opcode.BRA, target_pc=7),
            Instruction(Opcode.NOP),
            Instruction(Opcode.BRA, target_pc=7),
            Instruction(Opcode.RECONV),
            Instruction(Opcode.NOP),
            Instruction(Opcode.RECONV),
            Instruction(Opcode.EXIT),
        ],
    )


def kernel_ctl001():
    """Predicated EXIT: the SM kills all lanes regardless of the guard."""
    return raw_kernel(
        "bad_ctl001",
        [_setp_const(), Instruction(Opcode.EXIT, pred=0)],
    )


def kernel_ctl002():
    """Predicated BAR: barrier arrival ignores the guard."""
    return raw_kernel(
        "bad_ctl002",
        [
            _setp_const(),
            Instruction(Opcode.BAR, pred=0),
            Instruction(Opcode.EXIT),
        ],
    )


def kernel_bar001():
    """BAR inside the divergence region of a tid-dependent branch."""
    b = KernelBuilder("bad_bar001")
    i = b.sreg(Special.TID)
    p = b.pred()
    b.setp(p, CmpOp.LT, i, 16.0)
    with b.if_then(p):
        b.bar()
    return b.build()


def kernel_df001():
    """Arithmetic on a register no path ever writes."""
    b = KernelBuilder("bad_df001")
    i = b.sreg(Special.GTID)
    ghost = b.reg()
    out = b.reg()
    b.add(out, ghost, 1.0)
    b.st(b.addr(i, base=0, scale=8), out)
    return b.build()


def kernel_df002():
    """Load whose destination register is never observed."""
    b = KernelBuilder("bad_df002")
    i = b.sreg(Special.GTID)
    b.ld(b.addr(i, base=0, scale=8))  # dst unread: dead
    b.st(b.addr(i, base=4096, scale=8), i)
    return b.build()


def kernel_mem001():
    """Per-lane stride of 1024 B: a warp access spans ~249 cache lines."""
    b = KernelBuilder("bad_mem001")
    i = b.sreg(Special.GTID)
    x = b.ld(b.addr(i, base=0, scale=1024))
    b.st(b.addr(i, base=1 << 20, scale=8), x)
    return b.build()


def kernel_mem002():
    """Constant shared-memory address past the declared footprint."""
    b = KernelBuilder("bad_mem002", shared_mem_bytes=64)
    addr = b.const(128.0)
    x = b.ld(addr, space=MemSpace.SHARED)
    i = b.sreg(Special.GTID)
    b.st(b.addr(i, base=0, scale=8), x)
    return b.build()


def kernel_mem002_negative():
    """Constant negative global address."""
    b = KernelBuilder("bad_mem002_neg")
    addr = b.const(-8.0)
    x = b.ld(addr)
    i = b.sreg(Special.GTID)
    b.st(b.addr(i, base=0, scale=8), x)
    return b.build()


def kernel_path001():
    """Fall-through arm falls *through* the taken region to the join.

    This is exactly the corruption a builder bug dropping the
    ``bra end`` around an else-arm would produce: Algorithm 2 charges the
    fall-through warp ``target - pc - 1 = 2`` instructions, but the
    shortest real path from pc 2 to the reconvergence point executes 4.
    """
    return raw_kernel(
        "bad_path001",
        [
            _setp_const(),
            Instruction(Opcode.BRA, pred=0, target_pc=4, reconv_pc=6),
            Instruction(Opcode.NOP),
            Instruction(Opcode.NOP),
            Instruction(Opcode.NOP),
            Instruction(Opcode.NOP),
            Instruction(Opcode.RECONV),
            Instruction(Opcode.EXIT),
        ],
    )


BROKEN = {
    "CFG001": kernel_cfg001,
    "CFG002": kernel_cfg002,
    "CFG003": kernel_cfg003,
    "CFG004": kernel_cfg004,
    "CTL001": kernel_ctl001,
    "CTL002": kernel_ctl002,
    "BAR001": kernel_bar001,
    "DF001": kernel_df001,
    "DF002": kernel_df002,
    "MEM001": kernel_mem001,
    "MEM002": kernel_mem002,
    "PATH001": kernel_path001,
}


class TestBrokenKernelFixtures:
    @pytest.mark.parametrize("rule_id", sorted(BROKEN))
    def test_triggers_exactly_its_rule(self, rule_id):
        report = lint_kernel(BROKEN[rule_id]())
        fired = {f.rule for f in report.findings}
        assert fired == {rule_id}, (
            f"expected exactly {{{rule_id}}}, got {fired}:\n"
            + report.format_text()
        )

    @pytest.mark.parametrize("rule_id", sorted(BROKEN))
    def test_severity_matches_registry(self, rule_id):
        report = lint_kernel(BROKEN[rule_id]())
        for finding in report.findings:
            assert finding.severity is RULES[rule_id].severity

    def test_error_rules_fail_the_report(self):
        for rule_id, make in BROKEN.items():
            report = lint_kernel(make())
            expect_ok = RULES[rule_id].severity is not Severity.ERROR
            assert report.ok == expect_ok, rule_id

    def test_mem002_negative_address_variant(self):
        report = lint_kernel(kernel_mem002_negative())
        assert {f.rule for f in report.findings} == {"MEM002"}
        assert "negative" in report.findings[0].message

    def test_every_registered_rule_has_a_fixture(self):
        assert set(BROKEN) == set(RULES)


class TestCleanKernels:
    def test_simple_stream_kernel_is_clean(self):
        b = KernelBuilder("clean")
        i = b.sreg(Special.GTID)
        x = b.ld(b.addr(i, base=0, scale=8))
        y = b.reg()
        b.mad(y, x, 2.0, x)
        b.st(b.addr(i, base=4096, scale=8), y)
        report = lint_kernel(b.build())
        assert report.findings == [] and report.ok

    def test_uniform_barrier_is_clean(self):
        # A barrier under *uniform* (ctaid) control flow must not trip
        # BAR001 even though it sits inside a branch region.
        b = KernelBuilder("unibar")
        blk = b.sreg(Special.CTAID)
        p = b.pred()
        b.setp(p, CmpOp.LT, blk, 2.0)
        with b.if_then(p):
            b.bar()
        i = b.sreg(Special.GTID)
        b.st(b.addr(i, base=0, scale=8), i)
        report = lint_kernel(b.build())
        assert report.findings == []

    def test_loop_with_break_is_clean(self):
        b = KernelBuilder("loopclean")
        i = b.sreg(Special.GTID)
        p = b.pred()
        j = b.const(0.0)
        acc = b.const(0.0)
        with b.loop() as lp:
            b.setp(p, CmpOp.GE, j, i)
            lp.break_if(p)
            b.add(acc, acc, 1.0)
            b.add(j, j, 1.0)
        b.st(b.addr(i, base=0, scale=8), acc)
        assert lint_kernel(b.build()).findings == []


class TestWaivers:
    def _noisy_kernel(self):
        b = KernelBuilder("noisy")
        b.waive_lint("MEM001", "intended AoS layout")
        i = b.sreg(Special.GTID)
        x = b.ld(b.addr(i, base=0, scale=1024))
        b.st(b.addr(i, base=1 << 20, scale=8), x)
        return b.build()

    def test_waived_findings_are_reported_but_suppressed(self):
        report = lint_kernel(self._noisy_kernel())
        assert report.findings, "waived findings must stay visible"
        assert all(f.suppressed for f in report.findings)
        assert report.ok and not report.warnings

    def test_waiver_marks_text_output(self):
        report = lint_kernel(self._noisy_kernel())
        assert "(waived)" in report.format_text()

    def test_waiver_survives_kernel_object(self):
        k = self._noisy_kernel()
        assert k.lint_waivers == {"MEM001": "intended AoS layout"}

    def test_error_waiver_suppresses_failure(self):
        k = kernel_mem002()
        k.lint_waivers["MEM002"] = "fixture"
        report = lint_kernel(k)
        assert report.ok and report.findings


class TestReportShape:
    def test_json_round_trip(self):
        report = lint_kernel(kernel_ctl001())
        payload = json.loads(report.to_json())
        assert payload["kernel"] == "bad_ctl001"
        assert payload["ok"] is False and payload["errors"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "CTL001"
        assert finding["severity"] == "error"
        assert finding["pc"] == 1
        assert finding["suppressed"] is False

    def test_findings_carry_disassembly_source(self):
        report = lint_kernel(kernel_ctl002())
        (finding,) = report.findings
        assert finding.source == "[1] @p0 bar"

    def test_by_rule_and_sorting(self):
        report = lint_kernel(kernel_cfg004())
        assert report.by_rule("CFG004") == report.findings
        pcs = [f.pc for f in report.findings]
        assert pcs == sorted(pcs)

    def test_rule_selection(self):
        # Restricting the rule set must silence everything else.
        report = lint_kernel(kernel_ctl001(), rules=["MEM001"])
        assert report.findings == [] and report.ok


class TestBuilderLintHook:
    def test_build_lint_error_raises(self):
        from repro.errors import LintError

        b = KernelBuilder("hooked", shared_mem_bytes=64)
        addr = b.const(128.0)
        x = b.ld(addr, space=MemSpace.SHARED)
        i = b.sreg(Special.GTID)
        b.st(b.addr(i, base=0, scale=8), x)
        with pytest.raises(LintError):
            b.build(lint="error")

    def test_build_lint_warn_only_reports(self, capsys):
        b = KernelBuilder("warned", shared_mem_bytes=64)
        addr = b.const(128.0)
        x = b.ld(addr, space=MemSpace.SHARED)
        i = b.sreg(Special.GTID)
        b.st(b.addr(i, base=0, scale=8), x)
        kernel = b.finalize(lint="warn")
        assert kernel.name == "warned"
        assert "MEM002" in capsys.readouterr().err

    def test_build_rejects_unknown_lint_mode(self):
        from repro.errors import KernelBuildError

        b = KernelBuilder("k")
        with pytest.raises(KernelBuildError):
            b.build(lint="loud")


class TestWorkloadKernelsAreClean:
    def test_every_registered_workload_lints_clean(self, gpu):
        from repro.workloads import make_workload, workload_names

        for name in workload_names(include_synthetic=True):
            spec = make_workload(name, scale=0.5).build(gpu)
            report = lint_kernel(
                spec.kernel,
                warp_size=gpu.config.warp_size,
                line_size=gpu.config.l1d.line_size,
            )
            assert report.ok, f"{name} failed lint:\n" + report.format_text()
            assert not report.warnings, (
                f"{name} has unwaived warnings:\n" + report.format_text()
            )
