"""End-to-end pipeline tests: launches, divergence, barriers, timing."""

import numpy as np
import pytest

from repro import GPU, GPUConfig, KernelBuilder
from repro.errors import DeadlockError, LaunchError
from repro.isa.instructions import CmpOp, Special

from tests.conftest import build_copy_kernel, build_loop_sum_kernel


class TestLaunchValidation:
    def test_rejects_nonpositive_dims(self, gpu):
        kernel = build_copy_kernel(1, 0, 8)
        gpu.memory.alloc(4)
        with pytest.raises(LaunchError):
            gpu.launch(kernel, grid_dim=0, block_dim=32)
        with pytest.raises(LaunchError):
            gpu.launch(kernel, grid_dim=1, block_dim=0)

    def test_rejects_oversized_block(self, gpu):
        kernel = build_copy_kernel(1, 0, 8)
        gpu.memory.alloc(4)
        too_many = (gpu.config.max_warps_per_sm + 1) * gpu.config.warp_size
        with pytest.raises(LaunchError):
            gpu.launch(kernel, grid_dim=1, block_dim=too_many)


class TestFunctionalCorrectness:
    def test_copy_kernel(self, gpu):
        n = 256
        data = np.arange(n, dtype=float)
        src = gpu.memory.alloc_array(data)
        dst = gpu.memory.alloc_array(np.zeros(n))
        kernel = build_copy_kernel(n, src, dst)
        gpu.launch(kernel, grid_dim=4, block_dim=64)
        assert np.array_equal(gpu.memory.read_array(dst, n), data)

    def test_data_dependent_loops(self, gpu):
        n = 128
        trips = np.random.RandomState(0).randint(0, 30, n).astype(float)
        tb = gpu.memory.alloc_array(trips)
        ob = gpu.memory.alloc_array(np.zeros(n))
        kernel = build_loop_sum_kernel(n, tb, ob)
        gpu.launch(kernel, grid_dim=2, block_dim=64)
        expected = np.array([sum(range(int(t))) for t in trips], dtype=float)
        assert np.array_equal(gpu.memory.read_array(ob, n), expected)

    def test_partial_block(self, gpu):
        # 40 threads in 64-thread blocks: lanes beyond blockDim never run.
        n = 40
        data = np.arange(n, dtype=float)
        src = gpu.memory.alloc_array(data)
        dst = gpu.memory.alloc_array(np.zeros(n))
        kernel = build_copy_kernel(n, src, dst)
        gpu.launch(kernel, grid_dim=1, block_dim=64)
        assert np.array_equal(gpu.memory.read_array(dst, n), data)

    def test_barrier_orders_intra_block_communication(self, gpu):
        # Thread i writes slot i, barrier, then reads slot (i+1) % ntid.
        n = 64
        buf = gpu.memory.alloc_array(np.zeros(n))
        out = gpu.memory.alloc_array(np.zeros(n))
        b = KernelBuilder("rotate")
        tid = b.sreg(Special.TID)
        b.st(b.addr(tid, base=buf, scale=8), tid)
        b.bar()
        nxt = b.reg()
        b.add(nxt, tid, 1.0)
        b.mod(nxt, nxt, float(n))
        val = b.ld(b.addr(nxt, base=buf, scale=8))
        b.st(b.addr(tid, base=out, scale=8), val)
        gpu.launch(b.build(), grid_dim=1, block_dim=n)
        expected = (np.arange(n) + 1) % n
        assert np.array_equal(gpu.memory.read_array(out, n), expected)


class TestTimingSanity:
    def test_cycles_positive_and_bounded(self, gpu):
        n = 64
        src = gpu.memory.alloc_array(np.zeros(n))
        dst = gpu.memory.alloc_array(np.zeros(n))
        result = gpu.launch(build_copy_kernel(n, src, dst), 1, 64)
        assert result.cycles > 0
        assert result.thread_instructions >= n  # at least one inst per thread

    def test_more_work_takes_longer(self, config):
        def run(trip):
            gpu = GPU(config)
            n = 64
            tb = gpu.memory.alloc_array(np.full(n, float(trip)))
            ob = gpu.memory.alloc_array(np.zeros(n))
            return gpu.launch(build_loop_sum_kernel(n, tb, ob), 1, 64).cycles

        assert run(50) > run(5)

    def test_cache_hits_faster_than_misses(self, config):
        # Re-reading one line repeatedly must beat streaming many lines.
        def run(stride_lines):
            gpu = GPU(config)
            n = 64
            words = max(n * stride_lines * 16, 16)
            data = gpu.memory.alloc_array(np.zeros(words))
            out = gpu.memory.alloc_array(np.zeros(n))
            b = KernelBuilder("stream")
            tid = b.sreg(Special.GTID)
            acc = b.const(0.0)
            i = b.const(0.0)
            done = b.pred()
            with b.loop() as lp:
                b.setp(done, CmpOp.GE, i, 32.0)
                lp.break_if(done)
                addr = b.reg()
                b.mad(addr, i, float(stride_lines * 128), b.const(float(data)))
                x = b.ld(addr)
                b.add(acc, acc, x)
                b.add(i, i, 1.0)
            b.st(b.addr(tid, base=out, scale=8), acc)
            return gpu.launch(b.build(), 1, 64).cycles

        assert run(0) < run(4)  # same line every time vs a new line each trip

    def test_idle_skip_preserves_semantics(self, config):
        # A single warp with long dependency chains: the idle-skipping run
        # loop must still produce exact results.
        gpu = GPU(config)
        src = gpu.memory.alloc_array(np.arange(32, dtype=float))
        dst = gpu.memory.alloc_array(np.zeros(32))
        b = KernelBuilder("chain")
        tid = b.sreg(Special.GTID)
        x = b.ld(b.addr(tid, base=src, scale=8))
        for _ in range(10):
            b.sqrt(x, x)
            b.mul(x, x, x)
        b.st(b.addr(tid, base=dst, scale=8), x)
        gpu.launch(b.build(), 1, 32)
        out = gpu.memory.read_array(dst, 32)
        assert np.allclose(out, np.arange(32, dtype=float), atol=1e-6)


class TestMultiBlockDispatch:
    def test_more_blocks_than_capacity(self, tiny_config):
        gpu = GPU(tiny_config)
        n = 16 * 64  # 16 blocks of 2 warps; capacity is 4 blocks per SM
        data = np.arange(n, dtype=float)
        src = gpu.memory.alloc_array(data)
        dst = gpu.memory.alloc_array(np.zeros(n))
        result = gpu.launch(build_copy_kernel(n, src, dst), 16, 64)
        assert np.array_equal(gpu.memory.read_array(dst, n), data)
        assert len(result.blocks) == 16

    def test_blocks_distributed_across_sms(self, config):
        gpu = GPU(config)
        n = 8 * 64
        src = gpu.memory.alloc_array(np.zeros(n))
        dst = gpu.memory.alloc_array(np.zeros(n))
        gpu.launch(build_copy_kernel(n, src, dst), 8, 64)
        per_sm = [len(sm.completed_blocks) for sm in gpu.sms]
        assert sum(per_sm) == 8
        assert all(count > 0 for count in per_sm)

    def test_runaway_kernel_detected(self, tiny_config):
        gpu = GPU(tiny_config, max_cycles=10_000)
        b = KernelBuilder("forever")
        b.label("top")
        b.nop()
        b.bra("top")
        with pytest.raises(DeadlockError):
            gpu.launch(b.build(), 1, 32)


class TestSchemeEquivalence:
    def test_all_schemes_produce_identical_results(self):
        from repro import apply_scheme

        n = 256
        trips = np.random.RandomState(1).randint(0, 40, n).astype(float)
        outputs = {}
        for scheme in ["rr", "gto", "two_level", "gcaws", "cawa", "rr+cacp"]:
            gpu = GPU(apply_scheme(GPUConfig.default_sim(), scheme))
            tb = gpu.memory.alloc_array(trips)
            ob = gpu.memory.alloc_array(np.zeros(n))
            gpu.launch(build_loop_sum_kernel(n, tb, ob), 4, 64)
            outputs[scheme] = gpu.memory.read_array(ob, n)
        baseline = outputs.pop("rr")
        for scheme, out in outputs.items():
            assert np.array_equal(out, baseline), scheme
