"""Tests for the composed memory hierarchy timing walk."""

import pytest

from repro.config import CacheConfig, GPUConfig
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mshr import MSHRFile
from repro.memory.replacement import make_policy
from repro.memory.request import MemRequest, make_signature


def req(line_addr, cycle=0.0, critical=False):
    return MemRequest(line_addr, 0, (0, 0, 0), True, critical, cycle,
                      make_signature(0, line_addr))


@pytest.fixture
def env():
    config = GPUConfig.default_sim()
    hierarchy = MemoryHierarchy(config)
    l1 = Cache(config.l1d, make_policy("lru"))
    mshr = MSHRFile(config.l1d.mshr_entries)
    return config, hierarchy, l1, mshr


class TestTimingWalk:
    def test_l1_hit_is_fast(self, env):
        config, hierarchy, l1, mshr = env
        hierarchy.access(l1, mshr, req(0), 0.0)
        out = hierarchy.access(l1, mshr, req(0), 1000.0)
        assert out.l1_hit
        assert out.completion == 1000.0 + config.l1d.hit_latency

    def test_cold_miss_goes_to_dram(self, env):
        config, hierarchy, l1, mshr = env
        out = hierarchy.access(l1, mshr, req(0), 0.0)
        assert not out.l1_hit
        # L1 probe + DRAM minimum latency, no queueing on an idle system.
        assert out.completion == config.l1d.hit_latency + config.dram_latency

    def test_l2_hit_faster_than_dram(self, env):
        config, hierarchy, l1, mshr = env
        hierarchy.access(l1, mshr, req(0), 0.0)  # fills L2
        l1.invalidate_all()  # force L1 miss, L2 still holds the line
        out = hierarchy.access(l1, mshr, req(0), 10_000.0)
        assert not out.l1_hit
        assert out.completion == 10_000.0 + config.l1d.hit_latency + config.l2_latency

    def test_mshr_merge_returns_same_completion(self, env):
        config, hierarchy, l1, mshr = env
        first = hierarchy.access(l1, mshr, req(0), 0.0)
        # A second L1 access before the fill completes would hit the L1 tag
        # only after the fill; model it as a fresh request to the same line
        # arriving from another warp while the line is in flight.
        l1.invalidate_all()
        second = hierarchy.access(l1, mshr, req(0), 5.0)
        assert second.merged
        assert second.completion == max(first.completion, 5.0 + config.l1d.hit_latency)
        assert hierarchy.dram.accesses == 1  # no duplicate DRAM traffic

    def test_dram_queueing_composes(self, env):
        config, hierarchy, l1, mshr = env
        outs = [hierarchy.access(l1, mshr, req(i * 128), 0.0) for i in range(4)]
        completions = [o.completion for o in outs]
        assert completions == sorted(completions)
        assert completions[-1] > completions[0]

    def test_l2_stats_accumulate(self, env):
        config, hierarchy, l1, mshr = env
        hierarchy.access(l1, mshr, req(0), 0.0)
        assert hierarchy.l2.stats.accesses == 1
        assert hierarchy.l2.stats.misses == 1
