"""Tests for MSHR merging/throttling and the DRAM/L2 timing models."""

import pytest

from repro.config import CacheConfig
from repro.memory.dram import DRAMModel
from repro.memory.l2 import BankedL2
from repro.memory.mshr import MSHRFile
from repro.memory.request import MemRequest, make_signature


def req(line_addr, cycle=0.0):
    return MemRequest(line_addr, 0, (0, 0, 0), True, False, cycle,
                      make_signature(0, line_addr))


class TestMSHR:
    def test_lookup_merges_inflight(self):
        mshr = MSHRFile(entries=4)
        mshr.register(0, completion=100.0)
        assert mshr.lookup(0, now=50.0) == 100.0
        assert mshr.merged_misses == 1

    def test_lookup_misses_completed(self):
        mshr = MSHRFile(entries=4)
        mshr.register(0, completion=100.0)
        assert mshr.lookup(0, now=150.0) is None

    def test_full_detection(self):
        mshr = MSHRFile(entries=2)
        mshr.register(0, 100.0)
        assert not mshr.is_full(0.0)
        mshr.register(128, 120.0)
        assert mshr.is_full(0.0)
        assert not mshr.is_full(101.0)  # entry 0 completed

    def test_next_free_time(self):
        mshr = MSHRFile(entries=1)
        assert mshr.next_free_time(0.0) == 0.0
        mshr.register(0, 100.0)
        assert mshr.next_free_time(5.0) == 100.0

    def test_earliest_start_throttles_when_full(self):
        mshr = MSHRFile(entries=1)
        mshr.register(0, 100.0)
        assert mshr.earliest_start(10.0) == 100.0

    def test_outstanding_count(self):
        mshr = MSHRFile(entries=8)
        mshr.register(0, 100.0)
        mshr.register(128, 90.0)
        assert mshr.outstanding == 2


class TestDRAM:
    def test_min_latency(self):
        dram = DRAMModel(latency=220, service_interval=4)
        assert dram.access(0.0) == 220.0

    def test_bandwidth_queueing(self):
        dram = DRAMModel(latency=220, service_interval=4)
        first = dram.access(0.0)
        second = dram.access(0.0)
        assert first == 220.0
        assert second == 224.0  # queued behind the first request

    def test_idle_gap_resets_queue(self):
        dram = DRAMModel(latency=220, service_interval=4)
        dram.access(0.0)
        assert dram.access(1000.0) == 1220.0

    def test_access_count(self):
        dram = DRAMModel(latency=220, service_interval=4)
        dram.access(0.0)
        dram.access(0.0)
        assert dram.accesses == 2


class TestBankedL2:
    def make(self):
        return BankedL2(
            CacheConfig(sets=4, ways=2, line_size=128),
            num_banks=2,
            latency=120,
            service_interval=2,
        )

    def test_bank_interleaving(self):
        l2 = self.make()
        assert l2.bank_of(0) == 0
        assert l2.bank_of(128) == 1
        assert l2.bank_of(256) == 0

    def test_hit_latency(self):
        l2 = self.make()
        miss_hit, start, ready = l2.access(req(0), 0.0)
        assert miss_hit is False and ready == 120.0
        hit, start, ready = l2.access(req(0), 200.0)
        assert hit is True and ready == 320.0

    def test_same_bank_queues(self):
        l2 = self.make()
        _, s1, _ = l2.access(req(0), 0.0)
        _, s2, _ = l2.access(req(256), 0.0)  # same bank 0
        assert s1 == 0.0 and s2 == 2.0

    def test_different_banks_parallel(self):
        l2 = self.make()
        _, s1, _ = l2.access(req(0), 0.0)
        _, s2, _ = l2.access(req(128), 0.0)  # bank 1
        assert s1 == 0.0 and s2 == 0.0
