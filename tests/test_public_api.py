"""Contract tests for the package's public API surface."""

import inspect

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_present(self):
        assert repro.__version__.count(".") == 2

    def test_error_hierarchy(self):
        from repro import (
            ConfigError,
            DeadlockError,
            KernelBuildError,
            KernelValidationError,
            LaunchError,
            ReproError,
            SimulationError,
        )

        for exc in (ConfigError, KernelBuildError, KernelValidationError,
                    LaunchError, SimulationError):
            assert issubclass(exc, ReproError)
        assert issubclass(DeadlockError, SimulationError)

    def test_scheme_names_stable(self):
        # Downstream users key on these names; removing one is breaking.
        expected = {
            "rr", "gto", "two_level", "caws", "gcaws", "cawa",
            "rr+cacp", "gto+cacp", "two_level+cacp",
        }
        assert expected <= set(repro.SCHEMES)

    def test_workload_names_stable(self):
        from repro.workloads import workload_names

        assert set(workload_names()) == {
            "bfs", "b+tree", "heartwall", "kmeans", "needle", "srad_1",
            "strcltr_small", "backprop", "particle", "pathfinder",
            "strcltr_mid", "tpacf",
        }


class TestDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro", "repro.config", "repro.isa", "repro.isa.kernel",
            "repro.isa.asm", "repro.simt", "repro.sm", "repro.gpu",
            "repro.memory", "repro.scheduling", "repro.core",
            "repro.core.cpl", "repro.core.cacp", "repro.workloads",
            "repro.stats", "repro.experiments", "repro.cli",
        ],
    )
    def test_module_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, module_name

    def test_public_classes_documented(self):
        from repro import GPU, GPUConfig, KernelBuilder
        from repro.core import CACPPolicy, CriticalityPredictor
        from repro.scheduling import GCAWSScheduler

        for cls in (GPU, GPUConfig, KernelBuilder, CACPPolicy,
                    CriticalityPredictor, GCAWSScheduler):
            assert cls.__doc__ and len(cls.__doc__.strip()) > 20
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                # inspect.getdoc resolves docstrings inherited from the
                # base class (e.g. scheduler/policy interface overrides).
                assert inspect.getdoc(member), (
                    f"{cls.__name__}.{name} lacks a docstring"
                )
