"""Tests for the warp scheduling policies."""

import pytest

from repro.isa.kernel import KernelBuilder
from repro.scheduling import (
    GCAWSScheduler,
    GTOScheduler,
    LRRScheduler,
    OracleCAWSScheduler,
    TwoLevelScheduler,
    make_scheduler,
)
from repro.simt.block import ThreadBlock
from repro.simt.warp import Warp


def make_warps(count, block_dim=None, num_blocks=1):
    """Create `count` warps spread over `num_blocks` blocks."""
    b = KernelBuilder("t")
    b.nop()
    kernel = b.build()
    warps = []
    per_block = count // num_blocks
    for blk in range(num_blocks):
        block = ThreadBlock(blk, per_block * 32, num_blocks, kernel, 32)
        for w in range(per_block):
            warp = Warp(w, block, 32, 2, 1, dynamic_id=blk * per_block + w)
            block.warps.append(warp)
            warps.append(warp)
    return warps


class TestLRR:
    def test_rotates_fairly(self):
        sched = LRRScheduler()
        warps = make_warps(4)
        picks = []
        for _ in range(8):
            w = sched.select(warps, 0.0)
            sched.notify_issue(w, 0.0)
            picks.append(w.dynamic_id)
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_skips_missing_warps(self):
        sched = LRRScheduler()
        warps = make_warps(4)
        sched.notify_issue(warps[1], 0.0)
        assert sched.select([warps[0], warps[3]], 0.0) is warps[3]


class TestGTO:
    def test_greedy_sticks_to_last_warp(self):
        sched = GTOScheduler()
        warps = make_warps(4)
        first = sched.select(warps, 0.0)
        sched.notify_issue(first, 0.0)
        assert sched.select(warps, 1.0) is first

    def test_falls_back_to_oldest(self):
        sched = GTOScheduler()
        warps = make_warps(4)
        sched.notify_issue(warps[2], 0.0)
        # Greedy target (warp 2) not ready: oldest of the rest wins.
        assert sched.select([warps[1], warps[3]], 1.0) is warps[1]

    def test_finished_target_cleared(self):
        sched = GTOScheduler()
        warps = make_warps(2)
        sched.notify_issue(warps[1], 0.0)
        sched.notify_warp_finished(warps[1])
        assert sched.select(warps, 1.0) is warps[0]


class TestTwoLevel:
    def test_prefers_active_group(self):
        sched = TwoLevelScheduler(fetch_group_size=2)
        warps = make_warps(4)
        # Group 0 = warps 0,1; group 1 = warps 2,3.
        assert sched.select(warps, 0.0).dynamic_id in (0, 1)

    def test_switches_group_when_active_stalls(self):
        sched = TwoLevelScheduler(fetch_group_size=2)
        warps = make_warps(4)
        w = sched.select([warps[2], warps[3]], 0.0)
        assert w.dynamic_id in (2, 3)
        sched.notify_issue(w, 0.0)
        # Group 1 is now active and keeps priority.
        pick = sched.select(warps, 1.0)
        assert pick.dynamic_id in (2, 3)

    def test_round_robin_within_group(self):
        sched = TwoLevelScheduler(fetch_group_size=4)
        warps = make_warps(4)
        picks = []
        for _ in range(4):
            w = sched.select(warps, 0.0)
            sched.notify_issue(w, 0.0)
            picks.append(w.dynamic_id)
        assert picks == [0, 1, 2, 3]

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            TwoLevelScheduler(fetch_group_size=0)


class TestOracleCAWS:
    def test_prioritizes_by_oracle_time(self):
        warps = make_warps(3)
        oracle = {(0, 0): 10.0, (0, 1): 99.0, (0, 2): 50.0}
        sched = OracleCAWSScheduler(oracle)
        assert sched.select(warps, 0.0) is warps[1]

    def test_missing_oracle_entries_rank_lowest(self):
        warps = make_warps(2)
        sched = OracleCAWSScheduler({(0, 1): 5.0})
        assert sched.select(warps, 0.0) is warps[1]


class TestGCAWS:
    def test_ties_fall_back_to_oldest(self):
        warps = make_warps(4)
        sched = GCAWSScheduler()
        assert sched.select(warps, 0.0) is warps[0]

    def test_tail_phase_prioritizes_critical(self):
        warps = make_warps(4)
        block = warps[0].block
        # Finish half the block: tail phase begins.
        warps[2].mark_finished(1.0)
        warps[3].mark_finished(1.0)
        warps[1].criticality = 10_000.0
        warps[0].criticality = 10.0
        assert sched_select(sched := GCAWSScheduler(), [warps[0], warps[1]]) is warps[1]

    def test_pre_tail_ignores_criticality(self):
        warps = make_warps(4)
        warps[1].criticality = 10_000.0
        sched = GCAWSScheduler()
        # No warp finished: concentration (oldest) wins despite criticality.
        assert sched.select(warps, 0.0) is warps[0]

    def test_greedy_persists(self):
        warps = make_warps(4)
        sched = GCAWSScheduler()
        sched.notify_issue(warps[2], 0.0)
        assert sched.select(warps, 1.0) is warps[2]

    def test_non_greedy_ablation(self):
        warps = make_warps(4)
        sched = GCAWSScheduler(greedy=False)
        sched.notify_issue(warps[2], 0.0)
        assert sched.select(warps, 1.0) is warps[0]

    def test_log_ratio_buckets(self):
        sched = GCAWSScheduler(ratio=2.0)
        warps = make_warps(4)
        for w in warps[1:]:
            w.mark_finished(0.0)
        warp = warps[0]
        warp.criticality = 0.0
        assert sched._bucket(warp) == 0
        warp.criticality = 1.0
        b1 = sched._bucket(warp)
        warp.criticality = 1.9
        assert sched._bucket(warp) == b1
        warp.criticality = 4.0
        assert sched._bucket(warp) > b1


def sched_select(sched, ready):
    return sched.select(ready, 0.0)


class TestRegistry:
    def test_all_names_construct(self):
        for name in ["lrr", "rr", "gto", "two_level", "2lev", "caws", "gcaws"]:
            assert make_scheduler(name) is not None

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("fifo")
