"""Tests for repro.sanitize — the simulator-source invariant checker.

Covers, per ISSUE 8's acceptance criteria:

* one seeded-violation fixture tree per rule, each firing *exactly* its
  rule ID (``tests/fixtures/sanitize/<rule>/``);
* the shipped ``src/repro`` tree is sanitize-clean (tier-1 gate);
* deleting an entry from ``GPUConfig.FINGERPRINT_EXCLUDED`` (simulated
  via doctored :class:`ConfigFacts`) makes FPR001 fail through the
  stale-waiver check, and adding an unwaived excluded read fails too;
* waiver comments suppress findings without hiding them;
* the declared fingerprint constants are validated at import time;
* lint and sanitize share one registry/severity/report implementation.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.analysis.common import RuleRegistry, Severity
from repro.config import GPUConfig, _validate_fingerprint_spec
from repro.errors import ConfigError
from repro.sanitize import (
    RULES,
    ConfigFacts,
    SanitizeFinding,
    SanitizeReport,
    default_root,
    sanitize_tree,
)

FIXTURES = Path(__file__).parent / "fixtures" / "sanitize"

ALL_RULES = (
    "FPR001",
    "DET001",
    "DET002",
    "DET003",
    "OBS001",
    "FBK001",
    "CLK001",
    "SHD001",
)


def unsuppressed_rules(report: SanitizeReport) -> set:
    return {f.rule for f in report.findings if not f.suppressed}


# ----------------------------------------------------------------------
# Per-rule fixtures: each fires exactly its ID
# ----------------------------------------------------------------------
class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_fixture_fires_exactly_its_rule(self, rule_id):
        report = sanitize_tree(FIXTURES / rule_id.lower())
        assert not report.ok
        assert unsuppressed_rules(report) == {rule_id}

    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_fixture_clean_under_every_other_rule(self, rule_id):
        others = [r for r in ALL_RULES if r != rule_id]
        report = sanitize_tree(FIXTURES / rule_id.lower(), rules=others)
        assert report.ok
        assert unsuppressed_rules(report) == set()

    def test_all_rules_registered(self):
        assert set(ALL_RULES) <= set(RULES)
        for rule_id in ALL_RULES:
            assert RULES[rule_id].severity is Severity.ERROR


# ----------------------------------------------------------------------
# The shipped tree is clean (tier-1 gate)
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_shipped_tree_is_sanitize_clean(self):
        report = sanitize_tree()
        assert report.ok, "\n" + "\n".join(
            str(f) for f in report.findings if not f.suppressed
        )

    def test_waived_findings_are_still_reported(self):
        # The shipped tree carries FPR001/DET002 waivers; each waived
        # site must surface as a suppressed finding, not vanish.
        report = sanitize_tree()
        waived = [f for f in report.findings if f.suppressed]
        assert any(f.rule == "FPR001" for f in waived)
        assert any(f.rule == "DET002" for f in waived)
        assert all("(waived)" in str(f) for f in waived)


# ----------------------------------------------------------------------
# FPR001 exclusion-list coupling
# ----------------------------------------------------------------------
def live_facts() -> ConfigFacts:
    return ConfigFacts(
        fields=frozenset(f.name for f in dataclasses.fields(GPUConfig)),
        excluded=frozenset(GPUConfig.FINGERPRINT_EXCLUDED),
    )


class TestFingerprintSoundness:
    @pytest.mark.parametrize("entry", sorted(GPUConfig.FINGERPRINT_EXCLUDED))
    def test_deleting_any_exclusion_entry_fails_fpr001(self, entry):
        """Every excluded knob is read (waived) somewhere on the timing
        path, so deleting its entry must turn a waiver stale and fail."""
        facts = live_facts()
        doctored = dataclasses.replace(
            facts, excluded=facts.excluded - {entry}
        )
        report = sanitize_tree(rules=["FPR001"], config_facts=doctored)
        assert not report.ok
        stale = [f for f in report.findings if not f.suppressed]
        assert stale
        assert all(f.rule == "FPR001" for f in stale)
        assert any("stale" in f.message for f in stale)

    def test_unwaived_excluded_read_fails(self, tmp_path):
        (tmp_path / "config.py").write_text(
            (FIXTURES / "fpr001" / "config.py").read_text()
        )
        sm = tmp_path / "sm"
        sm.mkdir()
        (sm / "mod.py").write_text(
            "def width(config):\n    return config.backend\n"
        )
        report = sanitize_tree(tmp_path, rules=["FPR001"])
        assert not report.ok
        (sm / "mod.py").write_text(
            "def width(config):\n"
            "    # sanitize: waive FPR001 -- mode dispatch, parity-gated\n"
            "    return config.backend\n"
        )
        report = sanitize_tree(tmp_path, rules=["FPR001"])
        assert report.ok
        assert len(report.findings) == 1 and report.findings[0].suppressed

    def test_fingerprinted_reads_are_silent(self, tmp_path):
        (tmp_path / "config.py").write_text(
            (FIXTURES / "fpr001" / "config.py").read_text()
        )
        sm = tmp_path / "sm"
        sm.mkdir()
        (sm / "mod.py").write_text(
            "def width(config):\n    return config.num_sms\n"
        )
        report = sanitize_tree(tmp_path, rules=["FPR001"])
        assert report.ok and not report.findings

    def test_stale_waiver_is_unwaivable(self, tmp_path):
        """A waiver covering no excluded read fails even though the line
        nominally waives FPR001 — a waiver cannot vouch for itself."""
        (tmp_path / "config.py").write_text(
            (FIXTURES / "fpr001" / "config.py").read_text()
        )
        sm = tmp_path / "sm"
        sm.mkdir()
        (sm / "mod.py").write_text(
            "# sanitize: waive FPR001 -- stale: nothing excluded below\n"
            "def width(config):\n    return config.num_sms\n"
        )
        report = sanitize_tree(tmp_path, rules=["FPR001"])
        assert not report.ok


# ----------------------------------------------------------------------
# Waiver semantics
# ----------------------------------------------------------------------
class TestWaivers:
    def test_inline_and_line_above_forms(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import time\n"
            "t1 = time.time()  # sanitize: waive DET002 -- host bookkeeping\n"
            "# sanitize: waive DET002 -- host bookkeeping\n"
            "t2 = time.time()\n"
        )
        report = sanitize_tree(tmp_path, rules=["DET002"])
        assert report.ok
        assert len(report.findings) == 2
        assert all(f.suppressed for f in report.findings)

    def test_waiver_for_other_rule_does_not_suppress(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import time\n"
            "t = time.time()  # sanitize: waive DET003 -- wrong rule\n"
        )
        report = sanitize_tree(tmp_path, rules=["DET002"])
        assert not report.ok

    def test_multi_rule_waiver(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import time, random\n"
            "# sanitize: waive DET001,DET002 -- seeded fixture\n"
            "t = time.time() + random.random()\n"
        )
        report = sanitize_tree(tmp_path, rules=["DET001", "DET002"])
        assert report.ok
        assert len(report.findings) == 2


# ----------------------------------------------------------------------
# Declared fingerprint constants (config.py satellite)
# ----------------------------------------------------------------------
class TestFingerprintConstants:
    def test_exclusion_list_matches_field_names(self):
        fields = {f.name for f in dataclasses.fields(GPUConfig)}
        assert GPUConfig.FINGERPRINT_EXCLUDED <= fields

    def test_validation_rejects_unknown_exclusion(self, monkeypatch):
        monkeypatch.setattr(
            GPUConfig, "FINGERPRINT_EXCLUDED", frozenset({"no_such_knob"})
        )
        with pytest.raises(ConfigError, match="no_such_knob"):
            _validate_fingerprint_spec()

    def test_validation_rejects_unknown_functional_path(self, monkeypatch):
        monkeypatch.setattr(
            GPUConfig,
            "FUNCTIONAL_FINGERPRINT_FIELDS",
            {"bad": "l1d.no_such_field"},
        )
        with pytest.raises(ConfigError, match="bad"):
            _validate_fingerprint_spec()

    def test_excluded_knobs_do_not_perturb_fingerprint(self):
        base = GPUConfig.default_sim()
        assert base.fingerprint() == base.with_backend("vector").fingerprint()
        assert base.fingerprint() == base.with_clock("skip").fingerprint()
        assert base.fingerprint() == base.with_events("on").fingerprint()

    def test_functional_fingerprint_follows_declared_fields(self):
        base = GPUConfig.default_sim()
        assert set(GPUConfig.FUNCTIONAL_FINGERPRINT_FIELDS) == {
            "warp_size",
            "l1_line_size",
        }
        # Timing-only knobs do not move it; functional knobs do.
        assert (
            base.functional_fingerprint()
            == base.with_scheduler("gto").functional_fingerprint()
        )
        wider = dataclasses.replace(base, warp_size=64)
        assert base.functional_fingerprint() != wider.functional_fingerprint()


# ----------------------------------------------------------------------
# Shared registry machinery (lint/sanitize bugfix satellite)
# ----------------------------------------------------------------------
class TestSharedMachinery:
    def test_lint_and_sanitize_share_the_registry_design(self):
        from repro.analysis import lints

        assert isinstance(lints._REGISTRY, RuleRegistry)
        assert lints.RULES is lints._REGISTRY.rules
        from repro.sanitize import REGISTRY

        assert isinstance(REGISTRY, RuleRegistry)
        assert RULES is REGISTRY.rules

    def test_duplicate_rule_id_rejected(self):
        registry = RuleRegistry("test")

        @registry.rule("X001", Severity.ERROR, "first")
        def first(ctx):
            return iter(())

        with pytest.raises(ValueError, match="duplicate"):

            @registry.rule("X001", Severity.ERROR, "second")
            def second(ctx):
                return iter(())

    def test_finding_renders_like_lint_findings(self):
        finding = SanitizeFinding(
            rule="DET001",
            severity=Severity.ERROR,
            message="boom",
            path="sm/sm.py",
            line=7,
            source="x = 1",
        )
        assert str(finding) == "sm/sm.py:7: error [DET001] boom | x = 1"
        payload = finding.to_dict()
        assert payload["rule"] == "DET001"
        assert payload["severity"] == "error"
        assert payload["path"] == "sm/sm.py"
        assert payload["line"] == 7
        assert payload["suppressed"] is False


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_sanitize_all_json(self, capsys):
        from repro.cli import main

        assert main(["sanitize", "--all", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["root"] == str(default_root())

    def test_sanitize_single_rule_on_fixture(self, capsys):
        from repro.cli import main

        rc = main(
            ["sanitize", "--rule", "CLK001", "--root",
             str(FIXTURES / "clk001")]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "CLK001" in out

    def test_sanitize_unknown_rule(self, capsys):
        from repro.cli import main

        assert main(["sanitize", "--rule", "NOPE"]) == 2
        assert "unknown sanitize rule" in capsys.readouterr().err
