"""Sampled trace replay (``repro.sampling``): the spec knob, subset
planning invariants, the stratified estimator, calibration, and the
``run_sweep(sampled=...)`` integration.

The statistical contract under test: subset selection is a pure function
of the configuration (same seed, same subset), rate-1 sampling collapses
to the exact replay, and every reported metric's exact value falls inside
the sampled 95% interval on a calibrated cell.
"""

from __future__ import annotations

import pytest

from repro import trace as trace_mod
from repro.config import GPUConfig
from repro.errors import ConfigError
from repro.experiments import runner
from repro.sampling import (
    SamplingSpec,
    build_strata,
    derive_rng,
    derive_seed,
    parse_sampling_spec,
    profile_program,
    subsample_program,
)
from repro.sampling import calibrate as sampling_calibrate
from repro.stats import compare_results, max_rel_error
from repro.stats.sampling import REPORT_METRICS, SampledRunResult

SCALE = 0.25
WORKLOAD = "bfs"


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Sampling tests must not inherit memoized results across tests."""
    runner.clear_cache()
    yield
    runner.clear_cache()


def _program(workload=WORKLOAD, scale=SCALE, config=None):
    config = config or GPUConfig.default_sim()
    _result, program = trace_mod.record_workload(
        workload, scale=scale, config=config
    )
    return program


# ----------------------------------------------------------------------
# Spec parsing and seed derivation
# ----------------------------------------------------------------------
class TestSpec:
    def test_off_round_trip(self):
        spec = parse_sampling_spec("off")
        assert spec == SamplingSpec(mode="off")
        assert not spec.enabled
        assert str(spec) == "off"

    @pytest.mark.parametrize("text,mode,rate", [
        ("blocks:0.25", "blocks", 0.25),
        ("intervals:0.5", "intervals", 0.5),
        ("blocks:1", "blocks", 1.0),
    ])
    def test_valid_specs(self, text, mode, rate):
        spec = parse_sampling_spec(text)
        assert spec.mode == mode
        assert spec.rate == rate
        assert spec.enabled
        assert parse_sampling_spec(str(spec)) == spec

    @pytest.mark.parametrize("text", [
        "blocks", "warps:0.5", "blocks:zero", "blocks:0", "blocks:-0.1",
        "blocks:1.5", "intervals:", "",
    ])
    def test_invalid_specs_raise(self, text):
        with pytest.raises(ConfigError):
            parse_sampling_spec(text)

    def test_non_string_rejected(self):
        with pytest.raises(ConfigError, match="string"):
            parse_sampling_spec(0.5)

    def test_derived_seed_is_deterministic(self):
        assert derive_seed("blocks", 0.25, 0) == derive_seed("blocks", 0.25, 0)
        assert derive_seed("blocks", 0.25, 0) != derive_seed("blocks", 0.25, 1)

    def test_derived_rng_reproduces_its_stream(self):
        a = [derive_rng("x", 1).random() for _ in range(4)]
        b = [derive_rng("x", 1).random() for _ in range(4)]
        assert a == b


# ----------------------------------------------------------------------
# The config knob
# ----------------------------------------------------------------------
class TestConfigKnob:
    def test_default_is_off(self, config):
        assert config.sampling == "off"

    def test_with_sampling_switches_frontend(self, config):
        cfg = config.with_sampling("blocks:0.25")
        assert cfg.sampling == "blocks:0.25"
        assert cfg.frontend == "trace"
        # Disabling leaves the frontend untouched.
        assert cfg.with_sampling("off").frontend == "trace"

    def test_sampling_requires_trace_frontend(self):
        with pytest.raises(ConfigError, match="frontend"):
            GPUConfig.default_sim(sampling="blocks:0.25", frontend="execute")

    def test_invalid_spec_rejected_at_construction(self, config):
        with pytest.raises(ConfigError):
            config.with_sampling("blocks:2.0")

    def test_fingerprint_includes_sampling(self, config):
        """A sampled run must never alias an exact run's cache entry."""
        exact = config.with_frontend("trace")
        sampled = config.with_sampling("blocks:0.25")
        assert exact.fingerprint() != sampled.fingerprint()
        assert (
            sampled.fingerprint()
            != config.with_sampling("blocks:0.5").fingerprint()
        )
        assert (
            sampled.fingerprint()
            != config.with_sampling("blocks:0.25", seed=7).fingerprint()
        )
        # The frontend itself stays excluded (bit-identical by contract).
        assert exact.fingerprint() == config.fingerprint()


# ----------------------------------------------------------------------
# Planning invariants
# ----------------------------------------------------------------------
class TestPlanning:
    def test_profiles_account_for_every_record(self, config):
        program = _program(config=config)
        profiles = profile_program(program)
        assert len(profiles) == len(program.launches)
        for launch, per_block in zip(program.launches, profiles):
            records = sum(len(r) for r in launch.warps.values())
            assert sum(p.records for p in per_block.values()) == records

    def test_strata_partition_the_blocks(self, config):
        program = _program(config=config)
        profiles = profile_program(program)[-1]
        strata = build_strata(profiles)
        flat = [b for members in strata for b in members]
        assert sorted(flat) == sorted(profiles)
        assert len(flat) == len(set(flat))

    def test_rate_caps_the_stratum_count(self, config):
        """Min-one-per-stratum must not defeat the rate on irregular
        workloads where every block has a unique signature."""
        program = _program(config=config)
        profiles = profile_program(program)[-1]
        for rate in (0.25, 0.5):
            strata = build_strata(profiles, rate)
            assert len(strata) <= max(1, int(rate * len(profiles)))
            flat = [b for members in strata for b in members]
            assert sorted(flat) == sorted(profiles)

    def test_blocks_mode_selects_a_dense_renumbered_subset(self, config):
        program = _program(config=config)
        derived, plans = subsample_program(program, "blocks:0.5", seed=0)
        plan = plans[-1]
        launch = derived.launches[-1]
        total = plan.total_blocks
        assert 0 < len(plan.selected) <= total
        assert plan.selected == sorted(plan.selected)
        block_ids = {b for b, _w in launch.warps}
        assert block_ids == set(range(len(plan.selected)))
        assert launch.grid_dim == len(plan.selected)
        for new_id, original in enumerate(plan.selected):
            assert plan.original_id(new_id) == original

    def test_blocks_mode_respects_the_rate(self, config):
        program = _program(config=config)
        _derived, plans = subsample_program(program, "blocks:0.25", seed=0)
        plan = plans[-1]
        # max(1, round(rate * members)) per stratum, strata capped by the
        # rate: never more than one extra block over the naive target.
        assert len(plan.selected) <= max(1, int(0.25 * plan.total_blocks)) + 1

    def test_selection_is_deterministic_in_the_seed(self, config):
        program = _program(config=config)
        _d1, p1 = subsample_program(program, "blocks:0.5", seed=3)
        _d2, p2 = subsample_program(program, "blocks:0.5", seed=3)
        assert p1[-1].selected == p2[-1].selected

    def test_sampled_program_records_provenance(self, config):
        program = _program(config=config)
        derived, _plans = subsample_program(program, "blocks:0.5", seed=0)
        assert derived.meta["sampled_from"] == program.trace_id
        assert derived.meta["sampling"] == "blocks:0.5"
        assert derived.meta["sampling_seed"] == 0
        assert derived.functional_fingerprint == program.functional_fingerprint

    def test_intervals_keep_every_block_and_terminate_warps(self, config):
        program = _program(config=config)
        derived, plans = subsample_program(program, "intervals:0.25", seed=0)
        plan = plans[-1]
        original = program.launches[-1]
        launch = derived.launches[-1]
        assert plan.selected == sorted({b for b, _w in original.warps})
        assert set(launch.warps) == set(original.warps)
        for key, records in launch.warps.items():
            full = original.warps[key]
            assert 0 < len(records) <= len(full) + 1
            # Truncated streams are re-terminated with the warp's own
            # terminal (EXIT) record, so every warp still retires.
            assert records[-1] == full[-1]

    def test_intervals_reduce_the_replayed_records(self, config):
        program = _program(config=config)
        _derived, plans = subsample_program(program, "intervals:0.25", seed=0)
        plan = plans[-1]
        assert plan.replayed_records < plan.total_records


# ----------------------------------------------------------------------
# Estimation through the runner
# ----------------------------------------------------------------------
class TestSampledRun:
    def _run(self, spec, **kwargs):
        cfg = GPUConfig.default_sim().with_sampling(spec)
        return runner.run_scheme(
            WORKLOAD, "rr", scale=SCALE, config=cfg,
            use_cache=kwargs.pop("use_cache", False),
            persistent=kwargs.pop("persistent", False), **kwargs,
        )

    def _exact(self):
        cfg = GPUConfig.default_sim().with_frontend("trace")
        return runner.run_scheme(
            WORKLOAD, "rr", scale=SCALE, config=cfg,
            use_cache=False, persistent=False,
        )

    def test_rate_one_collapses_to_exact(self):
        sampled = self._run("blocks:1")
        exact = self._exact()
        assert isinstance(sampled, SampledRunResult)
        assert sampled.cycles == exact.cycles
        assert sampled.warp_instructions == exact.warp_instructions
        errors = compare_results(sampled, exact, REPORT_METRICS)
        assert max_rel_error(errors) == 0.0
        assert all(err.covered for err in errors.values())
        assert sampled.info.replay_fraction == 1.0

    def test_sampled_run_is_deterministic(self):
        a = self._run("blocks:0.5")
        b = self._run("blocks:0.5")
        assert a.cycles == b.cycles
        assert a.info.spec == b.info.spec
        assert {n: (e.lo, e.hi) for n, e in a.ci.items()} == {
            n: (e.lo, e.hi) for n, e in b.ci.items()
        }

    def test_estimates_carry_intervals_and_provenance(self):
        result = self._run("blocks:0.5")
        assert set(REPORT_METRICS) <= set(result.ci)
        for est in result.ci.values():
            assert est.lo <= est.value <= est.hi
        info = result.info
        assert info.mode == "blocks"
        assert info.rate == 0.5
        assert 0 < info.sampled_blocks <= info.total_blocks
        assert 0.0 < info.replay_fraction <= 1.0
        assert result.extra["sampling_replay_fraction"] == info.replay_fraction
        # Functional totals are exact by construction.
        assert result.ci["warp_instructions"].method == "exact"
        assert result.ci["warp_instructions"].lo == result.warp_instructions

    def test_intervals_mode_runs_and_estimates(self):
        result = self._run("intervals:0.5")
        exact = self._exact()
        assert isinstance(result, SampledRunResult)
        assert result.info.mode == "intervals"
        assert result.info.replay_fraction < 1.0
        assert result.ci["cycles"].value > 0
        # Extrapolated cycles stay on the exact value's order of magnitude.
        assert 0.3 * exact.cycles < result.cycles < 3.0 * exact.cycles

    def test_disk_cache_round_trips_the_sampled_type(self):
        first = self._run("blocks:0.5", use_cache=True, persistent=True)
        runner.clear_cache()  # drop the in-process memo, keep the disk
        second = self._run("blocks:0.5", use_cache=True, persistent=True)
        assert isinstance(second, SampledRunResult)
        assert second.cycles == first.cycles
        assert second.info is not None
        assert second.info.spec == first.info.spec
        assert {n: (e.lo, e.hi) for n, e in second.ci.items()} == {
            n: (e.lo, e.hi) for n, e in first.ci.items()
        }


# ----------------------------------------------------------------------
# Calibration and the sampled sweep
# ----------------------------------------------------------------------
class TestCalibration:
    def test_calibrate_persists_spec_and_envelope(self):
        # The loose target absorbs the machine-fill error of sampling a
        # 4-block grid (docs/sampling.md); picking the rate is the part
        # under test here, not its accuracy.
        report = sampling_calibrate.calibrate(
            [WORKLOAD], schemes=["rr"], rates=(0.5,), scale=SCALE,
            target_rel_err=2.0,
        )
        entry = report["workloads"][WORKLOAD]
        assert entry["spec"] == "blocks:0.5"
        assert set(entry["envelope"]) == set(sampling_calibrate.CAL_METRICS)
        floor = sampling_calibrate.ENVELOPE_FLOOR
        assert all(v >= floor for v in entry["envelope"].values())
        # Persisted and readable back through the lookup API.
        spec, envelope, source = sampling_calibrate.lookup(WORKLOAD)
        assert spec == "blocks:0.5"
        assert envelope == entry["envelope"]
        assert source.startswith("calibrated:")
        env, env_source = sampling_calibrate.envelope_for(WORKLOAD, spec)
        assert env == entry["envelope"]
        assert env_source == "calibrated"
        # The envelope vouches only for the rate it was measured at.
        assert sampling_calibrate.envelope_for(WORKLOAD, "blocks:0.1") == (
            None, "default",
        )

    def test_unmet_target_marks_workload_exact(self, monkeypatch):
        # An impossible target (negative) can never be met.
        report = sampling_calibrate.calibrate(
            [WORKLOAD], schemes=["rr"], rates=(0.5,), scale=SCALE,
            target_rel_err=-1.0,
        )
        entry = report["workloads"][WORKLOAD]
        assert entry["spec"] is None
        assert entry["envelope"] is None
        assert sampling_calibrate.lookup(WORKLOAD) == (
            None, None, "calibration-failed",
        )
        # Sampled sweeps then run this workload exactly.
        results = runner.run_sweep([WORKLOAD], ["rr"], scale=SCALE,
                                   sampled=True)
        result = results[(WORKLOAD, "rr")]
        assert not isinstance(result, SampledRunResult)

    def test_uncalibrated_workload_uses_the_default_spec(self):
        assert sampling_calibrate.lookup(WORKLOAD) == (
            sampling_calibrate.DEFAULT_SPEC, None, "default",
        )

    def test_calibrated_cell_covers_the_exact_value(self):
        """Same-seed determinism + safety-inflated envelopes: on the
        calibrated cells themselves, coverage is a guarantee."""
        sampling_calibrate.calibrate(
            [WORKLOAD], schemes=["rr"], rates=(0.5,), scale=SCALE,
            target_rel_err=2.0,
        )
        exact = runner.run_scheme(
            WORKLOAD, "rr", scale=SCALE,
            config=GPUConfig.default_sim().with_frontend("trace"),
            use_cache=False, persistent=False,
        )
        results = runner.run_sweep([WORKLOAD], ["rr"], scale=SCALE,
                                   sampled=True)
        sampled = results[(WORKLOAD, "rr")]
        assert isinstance(sampled, SampledRunResult)
        assert sampled.info.envelope_source == "calibrated"
        errors = compare_results(
            sampled, exact, sampling_calibrate.CAL_METRICS
        )
        assert all(err.covered for err in errors.values()), {
            n: e.to_dict() for n, e in errors.items() if not e.covered
        }

    def test_sweep_accepts_an_explicit_spec(self):
        results = runner.run_sweep([WORKLOAD], ["rr"], scale=SCALE,
                                   sampled="blocks:0.5")
        result = results[(WORKLOAD, "rr")]
        assert isinstance(result, SampledRunResult)
        assert result.info.spec == "blocks:0.5"
        assert result.info.envelope_source == "default"

    def test_sweep_sampled_false_stays_exact(self):
        results = runner.run_sweep([WORKLOAD], ["rr"], scale=SCALE)
        assert not isinstance(results[(WORKLOAD, "rr")], SampledRunResult)


# ----------------------------------------------------------------------
# run_sweep kwargs validation (satellite 1)
# ----------------------------------------------------------------------
class TestSweepKwargs:
    def test_unknown_kwarg_raises_a_clear_type_error(self):
        with pytest.raises(TypeError, match="definitely_not_a_knob"):
            runner.run_sweep([WORKLOAD], ["rr"], scale=SCALE,
                             definitely_not_a_knob=True)

    def test_error_names_the_accepted_option_sets(self):
        with pytest.raises(TypeError) as exc:
            runner.run_sweep([WORKLOAD], ["rr"], scale=SCALE, bogus=1)
        message = str(exc.value)
        assert "run_scheme option" in message
        assert "constructor parameter" in message

    def test_workload_constructor_kwargs_still_pass(self):
        results = runner.run_sweep(["bfs"], ["rr"], scale=SCALE,
                                   balanced=True)
        assert ("bfs", "rr") in results

    def test_run_scheme_kwargs_still_pass(self):
        results = runner.run_sweep([WORKLOAD], ["rr"], scale=SCALE,
                                   use_cache=False)
        assert (WORKLOAD, "rr") in results


# ----------------------------------------------------------------------
# Determinism tooling (satellite 2)
# ----------------------------------------------------------------------
class TestSanitizeCoupling:
    def test_det001_catches_an_unseeded_sampler(self):
        from pathlib import Path

        from repro.sanitize import sanitize_tree

        fixture = (Path(__file__).parent / "fixtures" / "sanitize"
                   / "det001")
        report = sanitize_tree(fixture, rules=["DET001"])
        assert not report.ok
        assert any(
            "block_sampler.py" in f.path and "seed" in f.message
            for f in report.findings if not f.suppressed
        )

    def test_shipped_sampling_tree_is_det001_clean(self):
        from pathlib import Path

        import repro.sampling
        from repro.sanitize import sanitize_tree

        root = Path(repro.sampling.__file__).parent
        report = sanitize_tree(root, rules=["DET001"])
        assert report.ok
        # Zero new waivers: the sampler is seeded by construction.
        assert not report.findings
