"""Tests for the Criticality Prediction Logic (CPL)."""

from dataclasses import replace

import pytest

from repro.core.cpl import CriticalityPredictor
from repro.isa.instructions import Instruction, Opcode
from repro.isa.kernel import KernelBuilder
from repro.simt.block import ThreadBlock
from repro.simt.warp import Warp


def make_block_with_warps(num_warps=4):
    b = KernelBuilder("t")
    b.nop()
    kernel = b.build()
    block = ThreadBlock(0, num_warps * 32, 1, kernel, 32)
    for w in range(num_warps):
        warp = Warp(w, block, 32, 2, 1, dynamic_id=w)
        block.warps.append(warp)
    return block


def branch(pc=0, target=10, reconv=20):
    return replace(
        Instruction(Opcode.BRA, pred=0, target=None, reconv=None),
        pc=pc,
        target_pc=target,
        reconv_pc=reconv,
    )


class TestInstructionTerm:
    def test_divergent_branch_adds_both_paths(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps()
        warp = block.warps[0]
        # fallthrough = [1, 10) = 9 insts, taken = [10, 20) = 10 insts
        cpl.on_branch(warp, branch(), diverged=True, all_taken=False)
        assert warp.cpl_inst_disparity == 19

    def test_taken_path_only(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps()
        warp = block.warps[0]
        cpl.on_branch(warp, branch(), diverged=False, all_taken=True)
        assert warp.cpl_inst_disparity == 10

    def test_fallthrough_path_only(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps()
        warp = block.warps[0]
        cpl.on_branch(warp, branch(), diverged=False, all_taken=False)
        assert warp.cpl_inst_disparity == 9

    def test_unconditional_branch_ignored(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps()
        warp = block.warps[0]
        inst = replace(Instruction(Opcode.BRA), pc=5, target_pc=0, reconv_pc=-1)
        cpl.on_branch(warp, inst, diverged=False, all_taken=True)
        assert warp.cpl_inst_disparity == 0

    def test_commit_decrements(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps()
        warp = block.warps[0]
        cpl.on_branch(warp, branch(), diverged=False, all_taken=True)
        before = warp.cpl_inst_disparity
        cpl.on_issue(warp, stall_cycles=0.0)
        assert warp.cpl_inst_disparity == before - 1

    def test_inst_term_never_negative(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps()
        warp = block.warps[0]
        for _ in range(5):
            cpl.on_issue(warp, 0.0)
        assert warp.cpl_inst_disparity == 0


class TestStallTerm:
    def test_stalls_accumulate(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps()
        warp = block.warps[0]
        cpl.on_issue(warp, stall_cycles=100.0)
        cpl.on_issue(warp, stall_cycles=50.0)
        assert warp.cpl_stall == 150.0
        assert warp.criticality >= 150.0

    def test_negative_stall_clamped(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps()
        warp = block.warps[0]
        cpl.on_issue(warp, stall_cycles=-5.0)
        assert warp.cpl_stall == 0.0


class TestEquationOne:
    def test_counter_combines_terms_with_cpi(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps()
        warp = block.warps[0]
        # Give the warp a known CPI: 10 instructions over 40 cycles = 4.0.
        warp.issued_instructions = 10
        warp.start_cycle = 0.0
        warp.last_issue_cycle = 40.0
        cpl.on_branch(warp, branch(), diverged=False, all_taken=True)  # +10 insts
        warp.cpl_stall = 7.0
        cpl._refresh(warp)
        assert warp.criticality == pytest.approx(10 * 4.0 + 7.0)

    def test_cpi_floor_is_one(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps()
        warp = block.warps[0]
        warp.issued_instructions = 100
        warp.last_issue_cycle = 10.0  # CPI would be 0.1
        assert cpl._cpi(warp) == 1.0


class TestVerdicts:
    def test_slower_half_flagged(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps(4)
        for i, warp in enumerate(block.warps):
            warp.criticality = float(i * 100)
        cpl._refresh_block_threshold(block)
        flags = [cpl.is_critical(w) for w in block.warps]
        assert flags == [False, False, True, True]

    def test_verdicts_sticky_between_refreshes(self):
        cpl = CriticalityPredictor(update_period=1000)
        block = make_block_with_warps(4)
        for i, warp in enumerate(block.warps):
            warp.criticality = float(i * 100)
        cpl._refresh_block_threshold(block)
        # Changing counters does not flip the latched flag...
        block.warps[0].criticality = 1e9
        assert not cpl.is_critical(block.warps[0])
        # ...until the next refresh.
        cpl._refresh_block_threshold(block)
        assert cpl.is_critical(block.warps[0])

    def test_periodic_refresh_via_issues(self):
        cpl = CriticalityPredictor(update_period=4)
        block = make_block_with_warps(2)
        warp = block.warps[0]
        warp.criticality = 0.0
        block.warps[1].criticality = 50.0
        for _ in range(4):
            cpl.on_issue(warp, 10.0)
        # After 4 issues a refresh happened; warp 0 accumulated 40 stall
        # cycles but that's still below warp 1.
        assert cpl.is_critical(block.warps[1])

    def test_rank_in_block(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps(4)
        for i, warp in enumerate(block.warps):
            warp.criticality = float(i)
        assert cpl.rank_in_block(block.warps[0]) == 0
        assert cpl.rank_in_block(block.warps[3]) == 3

    def test_forget_block(self):
        cpl = CriticalityPredictor()
        block = make_block_with_warps(2)
        cpl._refresh_block_threshold(block)
        cpl.forget_block(block.block_id)
        assert block.block_id not in cpl._block_threshold
