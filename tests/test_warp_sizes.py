"""Simulator correctness with non-default warp sizes (e.g. AMD's 64)."""

import numpy as np
import pytest

from repro import GPU, GPUConfig, KernelBuilder
from repro.isa.instructions import CmpOp, Special


def loop_kernel(n, trips_base, out_base):
    b = KernelBuilder("wavefront")
    tid = b.sreg(Special.GTID)
    p = b.pred()
    b.setp(p, CmpOp.LT, tid, float(n))
    with b.if_then(p):
        limit = b.ld(b.addr(tid, base=trips_base, scale=8))
        acc = b.const(0.0)
        j = b.const(0.0)
        done = b.pred()
        with b.loop() as lp:
            b.setp(done, CmpOp.GE, j, limit)
            lp.break_if(done)
            b.add(acc, acc, 2.0)
            b.add(j, j, 1.0)
        b.st(b.addr(tid, base=out_base, scale=8), acc)
    return b.build()


@pytest.mark.parametrize("warp_size", [8, 32, 64])
def test_divergent_loops_any_warp_size(warp_size):
    config = GPUConfig.default_sim(warp_size=warp_size)
    gpu = GPU(config)
    n = warp_size * 4
    trips = np.random.RandomState(3).randint(0, 12, n).astype(float)
    tb = gpu.memory.alloc_array(trips)
    ob = gpu.memory.alloc_array(np.zeros(n))
    gpu.launch(loop_kernel(n, tb, ob), grid_dim=2, block_dim=warp_size * 2)
    assert np.array_equal(gpu.memory.read_array(ob, n), trips * 2.0)


@pytest.mark.parametrize("warp_size", [8, 64])
def test_partial_warps_any_warp_size(warp_size):
    config = GPUConfig.default_sim(warp_size=warp_size)
    gpu = GPU(config)
    n = warp_size + warp_size // 2  # last warp half-populated
    trips = np.full(n, 3.0)
    tb = gpu.memory.alloc_array(trips)
    ob = gpu.memory.alloc_array(np.zeros(n))
    gpu.launch(loop_kernel(n, tb, ob), grid_dim=1, block_dim=n)
    assert np.array_equal(gpu.memory.read_array(ob, n), trips * 2.0)


def test_non_power_of_two_warp_size_rejected():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        GPUConfig.default_sim(warp_size=48)
