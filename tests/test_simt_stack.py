"""Tests for the SIMT reconvergence stack."""

import pytest

from repro.errors import SimulationError
from repro.simt.stack import NO_RECONV, SIMTStack, StackEntry


def test_initial_state():
    stack = SIMTStack(entry_pc=0, mask=0xF)
    assert stack.pc == 0
    assert stack.active_mask == 0xF
    assert stack.depth == 1
    assert not stack.empty


def test_advance_moves_pc():
    stack = SIMTStack(0, 0xF)
    stack.advance(5)
    assert stack.pc == 5
    assert stack.depth == 1


def test_diverge_executes_fallthrough_first():
    stack = SIMTStack(0, 0b1111)
    # Branch at pc 0: lanes 0-1 take to pc 10, lanes 2-3 fall through to 1;
    # reconvergence at pc 20.
    stack.diverge(taken_pc=10, fallthrough_pc=1, taken_mask=0b0011, reconv_pc=20)
    assert stack.pc == 1
    assert stack.active_mask == 0b1100
    assert stack.depth == 3


def test_reconvergence_merges_masks():
    stack = SIMTStack(0, 0b1111)
    stack.diverge(10, 1, 0b0011, reconv_pc=20)
    # Fall-through path runs to the reconvergence point.
    stack.advance(20)
    # Now the taken path executes.
    assert stack.pc == 10
    assert stack.active_mask == 0b0011
    stack.advance(20)
    # Both paths done: merged mask, at reconv point.
    assert stack.pc == 20
    assert stack.active_mask == 0b1111
    assert stack.depth == 1


def test_loop_exit_branch_taken_path_parks_at_reconv():
    # Loop-exit branches target the reconvergence point itself: exiting
    # lanes wait there while the rest keep looping.
    stack = SIMTStack(5, 0b1111)
    stack.diverge(taken_pc=30, fallthrough_pc=6, taken_mask=0b1000, reconv_pc=30)
    assert stack.pc == 6
    assert stack.active_mask == 0b0111
    stack.advance(30)  # remaining lanes reach the loop end
    assert stack.pc == 30
    assert stack.active_mask == 0b1111
    assert stack.depth == 1


def test_nested_divergence():
    stack = SIMTStack(0, 0b1111)
    stack.diverge(10, 1, 0b0011, reconv_pc=20)  # outer
    stack.diverge(5, 2, 0b0100, reconv_pc=8)  # inner split of lanes 2-3
    assert stack.pc == 2
    assert stack.active_mask == 0b1000
    stack.advance(8)
    assert stack.pc == 5
    assert stack.active_mask == 0b0100
    stack.advance(8)
    assert stack.pc == 8
    assert stack.active_mask == 0b1100
    stack.advance(20)  # outer fall-through done
    assert stack.pc == 10
    assert stack.active_mask == 0b0011


def test_uniform_diverge_rejected():
    stack = SIMTStack(0, 0b1111)
    with pytest.raises(SimulationError):
        stack.diverge(10, 1, 0b1111, reconv_pc=20)
    with pytest.raises(SimulationError):
        stack.diverge(10, 1, 0, reconv_pc=20)


def test_kill_lanes_removes_from_all_entries():
    stack = SIMTStack(0, 0b1111)
    stack.diverge(10, 1, 0b0011, reconv_pc=20)
    stack.kill_lanes(0b1100)  # kill the currently-executing fall-through set
    # The fall-through entry died; execution moves to the taken path.
    assert stack.active_mask == 0b0011
    assert stack.pc == 10


def test_empty_after_all_lanes_killed():
    stack = SIMTStack(0, 0b11)
    stack.kill_lanes(0b11)
    assert stack.empty


def test_snapshot_is_a_copy():
    stack = SIMTStack(0, 0b1)
    snap = stack.snapshot()
    snap[0].pc = 99
    assert stack.pc == 0
