"""Fine-grained SM pipeline behaviour: MSHR gating, stall accounting, caches."""

import numpy as np
import pytest

from repro import GPU, GPUConfig, KernelBuilder
from repro.config import CacheConfig
from repro.isa.instructions import CmpOp, Special
from repro.simt.warp import WarpStatus


def streaming_kernel(n, base, out_base, passes=4):
    b = KernelBuilder("stream")
    tid = b.sreg(Special.GTID)
    acc = b.const(0.0)
    p = b.const(0.0)
    addr = b.reg()
    b.mad(addr, tid, 128.0, b.const(float(base)))  # one line per lane
    done = b.pred()
    with b.loop() as lp:
        b.setp(done, CmpOp.GE, p, float(passes))
        lp.break_if(done)
        x = b.ld(addr)
        b.add(acc, acc, x)
        b.add(addr, addr, float(n * 128))
        b.add(p, p, 1.0)
    b.st(b.addr(tid, base=out_base, scale=8), acc)
    return b.build()


class TestMSHRGating:
    def test_memory_issue_gated_when_mshrs_full(self):
        # 2 MSHR entries and a kernel that wants 32 scattered lines per
        # warp: the stall-inducing-miss counter must engage.
        config = GPUConfig.default_sim(
            num_sms=1,
            l1d=CacheConfig(sets=8, ways=16, line_size=128, mshr_entries=2),
        )
        gpu = GPU(config)
        n = 64
        words = n * 16 * 4 + n
        data = gpu.memory.alloc_array(np.ones(words))
        out = gpu.memory.alloc_array(np.zeros(n))
        kernel = streaming_kernel(n, data, out)
        gpu.launch(kernel, 1, n)
        sm = gpu.sms[0]
        assert sm.mshr.stall_inducing_misses > 0

    def test_larger_mshr_file_is_faster_under_mlp(self):
        def run(entries):
            config = GPUConfig.default_sim(
                num_sms=1,
                l1d=CacheConfig(sets=8, ways=16, line_size=128,
                                mshr_entries=entries),
            )
            gpu = GPU(config)
            n = 64
            words = n * 16 * 4 + n
            data = gpu.memory.alloc_array(np.ones(words))
            out = gpu.memory.alloc_array(np.zeros(n))
            return gpu.launch(streaming_kernel(n, data, out), 1, n).cycles

        assert run(32) < run(2)


class TestStallAccounting:
    def test_memory_stalls_attributed(self):
        gpu = GPU(GPUConfig.default_sim(num_sms=1))
        n = 32
        words = n * 16 * 4 + n
        data = gpu.memory.alloc_array(np.ones(words))
        out = gpu.memory.alloc_array(np.zeros(n))
        result = gpu.launch(streaming_kernel(n, data, out), 1, n)
        warp = result.blocks[0].warps[0]
        assert warp.mem_stall_cycles > 0
        assert warp.total_stall_cycles >= warp.mem_stall_cycles

    def test_sched_stall_under_contention(self):
        # Many warps, one scheduler slot: somebody waits while ready.
        gpu = GPU(GPUConfig.default_sim(num_sms=1, num_schedulers_per_sm=1))
        n = 512
        src = gpu.memory.alloc_array(np.zeros(n))
        out = gpu.memory.alloc_array(np.zeros(n))
        b = KernelBuilder("busy")
        tid = b.sreg(Special.GTID)
        acc = b.const(0.0)
        for _ in range(20):
            b.add(acc, acc, 1.0)
        b.st(b.addr(tid, base=out, scale=8), acc)
        result = gpu.launch(b.build(), 2, 256)
        total_sched = sum(
            w.sched_stall_cycles for blk in result.blocks for w in blk.warps
        )
        assert total_sched > 0


class TestWarpScheduleCache:
    def test_cache_invalidated_by_issue(self):
        gpu = GPU(GPUConfig.default_sim(num_sms=1))
        n = 32
        src = gpu.memory.alloc_array(np.zeros(n))
        out = gpu.memory.alloc_array(np.zeros(n))
        from tests.conftest import build_copy_kernel

        kernel = build_copy_kernel(n, src, out)
        from repro.sm.dispatcher import BlockDispatcher

        dispatcher = BlockDispatcher(kernel, 1, 32, 32)
        sm = gpu.sms[0]
        dispatcher.try_dispatch([sm], 0.0)
        warp = sm.warps[0]
        t0, _ = warp.schedule_info()
        sm.tick(t0)
        t1, _ = warp.schedule_info()
        assert t1 > t0  # at minimum the 1-inst-per-cycle floor moved

    def test_finished_warp_never_issuable(self):
        gpu = GPU(GPUConfig.default_sim(num_sms=1))
        n = 32
        src = gpu.memory.alloc_array(np.zeros(n))
        out = gpu.memory.alloc_array(np.zeros(n))
        from tests.conftest import build_copy_kernel

        result = gpu.launch(build_copy_kernel(n, src, out), 1, 32)
        warp = result.blocks[0].warps[0]
        assert warp.status is WarpStatus.FINISHED
        assert warp.issuable_at() == float("inf")
