"""Feedback signal streams are bit-identical across every simulator mode.

The FeedbackChannel determinism contract (docs/schemes.md): the canonical
signal stream — every record, compared as ``(cycle, sm, kind, fields)``
tuples — is identical across execute/trace frontends, cycle/skip clocks,
python/vector backends, and shard counts; and because the consumer
schemes (ccws/wasp/ciao) alter issue decisions based on those signals,
their *cycle counts* must agree across modes too, which these tests pin
alongside the streams themselves.

Recording goes through :func:`repro.feedback.record_signals`, which taps
every per-SM L1 channel plus the shared-L2 device channel.
"""

import multiprocessing

import pytest

from repro.config import GPUConfig
from repro.feedback import record_signals
from repro.feedback.signals import LEVEL_L1D, LEVEL_L2, Sig, validate_signals

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded replay requires the fork start method",
)

CONSUMER_SCHEMES = ["ccws", "wasp", "ciao"]

#: Wide enough for strcltr_mid scale=1 (4 blocks) to be fully resident
#: under sharding (same sizing as test_sharded_replay).
NUM_SMS = 4


def _record(scheme, workload="backprop", scale=0.25, num_sms=None,
            frontend="execute", clock="cycle", backend="python", shards=1):
    cfg = GPUConfig.default_sim(
        **({"num_sms": num_sms} if num_sms is not None else {})
    ).with_clock(clock).with_backend(backend)
    if frontend == "trace":
        cfg = cfg.with_frontend("trace").with_shards(shards)
    result, signals = record_signals(workload, scheme, scale=scale, config=cfg)
    return result, signals


class TestSignalStreamFast:
    """Tier-1 subset: one workload, every consumer scheme, core modes."""

    @pytest.mark.parametrize("scheme", CONSUMER_SCHEMES)
    def test_execute_trace_identical(self, scheme):
        exec_result, exec_signals = _record(scheme, frontend="execute")
        trace_result, trace_signals = _record(scheme, frontend="trace")
        assert exec_result.cycles == trace_result.cycles
        assert exec_signals == trace_signals
        assert validate_signals(exec_signals) > 0

    def test_clock_and_backend_identical(self):
        _, reference = _record("ccws")
        _, skip = _record("ccws", clock="skip")
        _, vector = _record("ccws", backend="vector")
        _, skip_vector = _record("ccws", clock="skip", backend="vector")
        assert skip == reference
        assert vector == reference
        assert skip_vector == reference

    def test_stream_contents(self):
        result, signals = _record("ccws")
        # Every kind flows; L2 signals ride the device channel with the
        # *requesting* SM id, so sm >= 0 everywhere.
        kinds = {record[0] for record in signals}
        assert kinds == {int(Sig.MISS), int(Sig.FILL), int(Sig.EVICT)}
        levels = {record[3] for record in signals}
        assert levels == {LEVEL_L1D, LEVEL_L2}
        assert all(record[2] >= 0 for record in signals)
        # L1 misses surface in both the stream and the counters.
        l1_misses = sum(
            1 for r in signals
            if r[0] == int(Sig.MISS) and r[3] == LEVEL_L1D
        )
        assert l1_misses == result.l1_stats.misses

    def test_direct_config_is_upgraded(self):
        # record_signals flips feedback='direct' to 'channel' rather than
        # failing the attach.
        _, signals = _record("ccws")
        cfg = GPUConfig.default_sim(feedback="direct")
        _, upgraded = record_signals("backprop", "ccws", scale=0.25, config=cfg)
        assert upgraded == signals

    def test_feedback_oblivious_scheme_streams_too(self):
        # The tap force-wires publish hooks even when no scheduler
        # subscribes, so gto is observable without behavior change.
        result, signals = _record("gto")
        assert validate_signals(signals) > 0
        assert result.cycles > 0


@needs_fork
class TestShardedStreams:
    """Worker-local L1 + coordinator L2 signals merge to the serial stream."""

    def test_two_shards_match_serial(self):
        serial_result, serial = _record(
            "ccws", workload="strcltr_mid", scale=1.0, num_sms=NUM_SMS,
            frontend="trace", shards=1,
        )
        sharded_result, sharded = _record(
            "ccws", workload="strcltr_mid", scale=1.0, num_sms=NUM_SMS,
            frontend="trace", shards=2,
        )
        assert sharded_result.cycles == serial_result.cycles
        assert sharded == serial
        assert validate_signals(sharded) > 0

    @pytest.mark.slow
    def test_four_shards_match_serial(self):
        _, serial = _record(
            "ccws", workload="strcltr_mid", scale=1.0, num_sms=NUM_SMS,
            frontend="trace", shards=1,
        )
        _, sharded = _record(
            "ccws", workload="strcltr_mid", scale=1.0, num_sms=NUM_SMS,
            frontend="trace", shards=4,
        )
        assert sharded == serial


@pytest.mark.slow
class TestSignalStreamFullGrid:
    """Every consumer scheme x clock x backend, execute and trace."""

    @pytest.mark.parametrize("scheme", CONSUMER_SCHEMES)
    def test_grid_cell(self, scheme):
        _, reference = _record(scheme)
        for frontend in ("execute", "trace"):
            for clock in ("cycle", "skip"):
                for backend in ("python", "vector"):
                    _, signals = _record(
                        scheme, frontend=frontend, clock=clock, backend=backend
                    )
                    assert signals == reference, (
                        f"{scheme}: {frontend}/{clock}/{backend} diverged"
                    )
