"""Tests for the KernelBuilder DSL and instruction encoding."""

import pytest

from repro.errors import KernelBuildError, KernelValidationError
from repro.isa import CmpOp, KernelBuilder, Opcode, Special, validate_kernel
from repro.isa.kernel import Kernel, Reg


class TestRegisterAllocation:
    def test_regs_are_sequential(self):
        b = KernelBuilder("k")
        r0, r1, r2 = b.regs(3)
        assert (r0.idx, r1.idx, r2.idx) == (0, 1, 2)

    def test_preds_are_sequential(self):
        b = KernelBuilder("k")
        assert b.pred().idx == 0
        assert b.pred().idx == 1

    def test_num_regs_tracks_allocation(self):
        b = KernelBuilder("k")
        b.regs(5)
        b.mov(Reg(0), 1.0)
        kernel = b.build()
        assert kernel.num_regs == 5


class TestEncoding:
    def test_implicit_exit_appended(self):
        b = KernelBuilder("k")
        b.mov(b.reg(), 1.0)
        kernel = b.build()
        assert kernel.instructions[-1].op is Opcode.EXIT

    def test_explicit_exit_not_duplicated(self):
        b = KernelBuilder("k")
        b.mov(b.reg(), 1.0)
        b.exit()
        kernel = b.build()
        assert sum(1 for i in kernel.instructions if i.op is Opcode.EXIT) == 1

    def test_immediate_must_be_last(self):
        b = KernelBuilder("k")
        r = b.reg()
        with pytest.raises(KernelBuildError):
            b.add(r, 1.0, r)

    def test_two_immediates_rejected(self):
        b = KernelBuilder("k")
        with pytest.raises(KernelBuildError):
            b.add(b.reg(), 1.0, 2.0)

    def test_mad_scalar_multiplier_encodes_as_imm(self):
        b = KernelBuilder("k")
        a, c, d = b.regs(3)
        b.mad(d, a, 4.0, c)
        inst = b._instructions[-1]
        assert inst.imm == 4.0
        assert inst.srcs == (a.idx, c.idx)

    def test_mad_scalar_addend_materialized(self):
        b = KernelBuilder("k")
        a, bb, d = b.regs(3)
        b.mad(d, a, bb, 7.0)
        # A MOV materializing 7.0 must precede the MAD.
        mov = b._instructions[-2]
        assert mov.op is Opcode.MOV and mov.imm == 7.0
        assert b._instructions[-1].srcs[1] == bb.idx

    def test_duplicate_label_rejected(self):
        b = KernelBuilder("k")
        b.label("x")
        with pytest.raises(KernelBuildError):
            b.label("x")

    def test_undefined_branch_label_rejected(self):
        b = KernelBuilder("k")
        b.bra("nowhere")
        with pytest.raises(KernelBuildError):
            b.build()

    def test_pc_fields_resolved(self):
        b = KernelBuilder("k")
        p = b.pred()
        b.setp(p, CmpOp.LT, b.const(0.0), 1.0)
        with b.if_then(p):
            b.nop()
        kernel = b.build()
        branches = [i for i in kernel.instructions if i.op is Opcode.BRA]
        assert branches, "if_then must emit a branch"
        assert branches[0].target_pc >= 0
        assert branches[0].reconv_pc >= 0
        assert kernel.instructions[branches[0].reconv_pc].op is Opcode.RECONV


class TestStructuredControlFlow:
    def test_unclosed_frame_rejected(self):
        b = KernelBuilder("k")
        p = b.pred()
        b.setp(p, CmpOp.LT, b.const(0.0), 1.0)
        b.begin_if(p)
        with pytest.raises(KernelBuildError):
            b.build()

    def test_end_if_wrong_frame_rejected(self):
        b = KernelBuilder("k")
        p = b.pred()
        f1 = b.begin_if(p)
        b.begin_if(p)
        with pytest.raises(KernelBuildError):
            b.end_if(f1)

    def test_begin_else_twice_rejected(self):
        b = KernelBuilder("k")
        p = b.pred()
        f = b.begin_if(p)
        b.begin_else(f)
        with pytest.raises(KernelBuildError):
            b.begin_else(f)

    def test_loop_emits_backedge_and_reconv(self):
        b = KernelBuilder("k")
        p = b.pred()
        with b.loop() as lp:
            b.setp(p, CmpOp.GE, b.const(1.0), 0.0)
            lp.break_if(p)
        kernel = b.build()
        ops = [i.op for i in kernel.instructions]
        assert ops.count(Opcode.BRA) == 2  # exit branch + back edge
        assert Opcode.RECONV in ops

    def test_nested_structures_validate(self):
        b = KernelBuilder("k")
        p, q = b.pred(), b.pred()
        b.setp(p, CmpOp.LT, b.const(0.0), 1.0)
        with b.loop() as lp:
            b.setp(q, CmpOp.GE, b.const(1.0), 0.0)
            lp.break_if(q)
            with b.if_then(p):
                f = b.begin_if(p, invert=True)
                b.nop()
                b.begin_else(f)
                b.nop(2)
                b.end_if(f)
        kernel = b.build()
        validate_kernel(kernel)  # must not raise

    def test_conditional_branches_are_forward(self):
        b = KernelBuilder("k")
        p = b.pred()
        with b.loop() as lp:
            b.setp(p, CmpOp.GE, b.const(1.0), 0.0)
            lp.break_if(p)
        kernel = b.build()
        for inst in kernel.instructions:
            if inst.op is Opcode.BRA and inst.pred is not None:
                assert inst.target_pc > inst.pc


class TestDisassembly:
    def test_disassemble_contains_labels_and_ops(self):
        b = KernelBuilder("k")
        p = b.pred()
        b.setp(p, CmpOp.LT, b.const(0.0), 1.0)
        with b.if_then(p):
            b.nop()
        text = b.build().disassemble()
        assert "bra" in text
        assert "exit" in text
        assert ":" in text  # at least one label line


class TestValidateKernel:
    def test_rejects_empty(self):
        with pytest.raises(KernelValidationError):
            validate_kernel(Kernel("k", [], {}, 1, 1))

    def test_rejects_missing_exit(self):
        from repro.isa.instructions import Instruction

        inst = Instruction(Opcode.NOP, pc=0)
        with pytest.raises(KernelValidationError):
            validate_kernel(Kernel("k", [inst], {}, 1, 1))

    def test_rejects_out_of_range_register(self):
        from dataclasses import replace

        from repro.isa.instructions import Instruction

        insts = [
            replace(Instruction(Opcode.MOV, dst=5, imm=1.0), pc=0),
            replace(Instruction(Opcode.EXIT), pc=1),
        ]
        with pytest.raises(KernelValidationError):
            validate_kernel(Kernel("k", insts, {}, 2, 1))


class TestValidateHardening:
    """Structural invariants added with the static-analysis subsystem:
    region nesting, duplicate reconvergence PCs, and branch-dominates-
    reconvergence (all enforced by ``validate_kernel``)."""

    @staticmethod
    def _raw(name, instrs, num_preds=1):
        from dataclasses import replace

        from repro.isa.instructions import Instruction  # noqa: F401

        resolved = [replace(i, pc=pc) for pc, i in enumerate(instrs)]
        return Kernel(name, resolved, {}, 1, num_preds)

    @staticmethod
    def _setp():
        from repro.isa.instructions import Instruction

        return Instruction(Opcode.SETP, dst=0, imm=1.0, cmp=CmpOp.EQ)

    def test_rejects_ill_nested_regions(self):
        from repro.isa.instructions import Instruction

        insts = [
            self._setp(),
            Instruction(Opcode.BRA, pred=0, target_pc=3, reconv_pc=5),
            Instruction(Opcode.BRA, pred=0, target_pc=4, reconv_pc=7),
            Instruction(Opcode.NOP),
            Instruction(Opcode.NOP),
            Instruction(Opcode.RECONV),
            Instruction(Opcode.NOP),
            Instruction(Opcode.RECONV),
            Instruction(Opcode.EXIT),
        ]
        with pytest.raises(KernelValidationError, match="must nest"):
            validate_kernel(self._raw("illnested", insts))

    def test_rejects_duplicate_shared_reconv_pc(self):
        from repro.isa.instructions import Instruction

        insts = [
            self._setp(),
            Instruction(Opcode.BRA, pred=0, target_pc=3, reconv_pc=5),
            Instruction(Opcode.BRA, pred=0, target_pc=4, reconv_pc=5),
            Instruction(Opcode.NOP),
            Instruction(Opcode.NOP),
            Instruction(Opcode.RECONV),
            Instruction(Opcode.EXIT),
        ]
        with pytest.raises(KernelValidationError, match="share reconvergence"):
            validate_kernel(self._raw("dupreconv", insts))

    def test_rejects_undominated_reconv_pc(self):
        from repro.isa.instructions import Instruction

        insts = [
            self._setp(),
            Instruction(Opcode.BRA, pred=0, target_pc=7, reconv_pc=9),
            Instruction(Opcode.BRA, pred=0, target_pc=5, reconv_pc=7),
            Instruction(Opcode.NOP),
            Instruction(Opcode.BRA, target_pc=7),
            Instruction(Opcode.NOP),
            Instruction(Opcode.BRA, target_pc=7),
            Instruction(Opcode.RECONV),
            Instruction(Opcode.NOP),
            Instruction(Opcode.RECONV),
            Instruction(Opcode.EXIT),
        ]
        with pytest.raises(KernelValidationError, match="never be popped"):
            validate_kernel(self._raw("undominated", insts))

    def test_accepts_sibling_loop_breaks_sharing_reconv(self):
        # Two breaks of the same loop share the loop-exit reconvergence
        # point by construction; build() validates, so this must not raise.
        b = KernelBuilder("twobreaks")
        p, q = b.pred(), b.pred()
        j = b.const(0.0)
        with b.loop() as lp:
            b.setp(p, CmpOp.GE, j, 4.0)
            lp.break_if(p)
            b.setp(q, CmpOp.GE, j, 2.0)
            lp.break_if(q)
            b.add(j, j, 1.0)
        kernel = b.build()
        validate_kernel(kernel)  # idempotent re-check

    def test_accepts_nested_structured_regions(self):
        b = KernelBuilder("oknest")
        i = b.sreg(Special.TID)
        p, q = b.pred(), b.pred()
        b.setp(p, CmpOp.LT, i, 16.0)
        b.setp(q, CmpOp.LT, i, 8.0)
        with b.if_then(p):
            with b.if_then(q):
                b.nop()
        validate_kernel(b.build())
