"""Sharded replay with the event bus: merged streams must be deterministic
and byte-identical to serial replay's.

Each worker records its owned SMs' events, the coordinator records the
shared L2/DRAM events, and :func:`repro.obs.collect.merge_event_streams`
defines the merged stream as the canonical sort of the union — so a
Chrome-trace export must not contain a single differing byte between
``shards=1`` and ``shards=N``, or between two ``shards=N`` runs.

Also covers the sharded live-observer guard: obs collectors are exempt
(they ride the event layer through the coordinator), while legacy live
observers still raise a :class:`ConfigError` that now names the blocking
collector classes and points at ``docs/observability.md``.
"""

import multiprocessing

import pytest

from repro import trace as trace_mod
from repro.config import GPUConfig
from repro.core.cawa import apply_scheme
from repro.errors import ConfigError
from repro.obs import StallAccounting, bus_from_spec, write_chrome_trace

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded replay requires the fork start method",
)

NUM_SMS = 4
WORKLOAD = "bfs"
SCALE = 0.25

_PROGRAMS = {}


def _config():
    return GPUConfig.default_sim(num_sms=NUM_SMS).with_frontend("trace")


def _program():
    key = (WORKLOAD, SCALE)
    if key not in _PROGRAMS:
        _, program = trace_mod.record_workload(
            WORKLOAD, scale=SCALE,
            config=GPUConfig.default_sim(num_sms=NUM_SMS),
        )
        _PROGRAMS[key] = program
    return _PROGRAMS[key]


def _replay_events(scheme, shards):
    cfg = apply_scheme(_config().with_shards(shards), scheme)
    bus = bus_from_spec("on")
    result = trace_mod.replay_program(
        _program(), cfg, scheme=scheme, bus=bus
    )[-1]
    return result, bus


@needs_fork
class TestShardedEventIdentity:
    def test_sharded_stream_matches_serial_bytes(self, tmp_path):
        serial, serial_bus = _replay_events("gto", shards=1)
        sharded, sharded_bus = _replay_events("gto", shards=2)
        assert sharded.cycles == serial.cycles
        assert sharded.extra["events_recorded"] == len(sharded_bus.events())
        a = write_chrome_trace(serial_bus.events(), tmp_path / "serial.json")
        b = write_chrome_trace(sharded_bus.events(), tmp_path / "sharded.json")
        assert a.read_bytes() == b.read_bytes()

    def test_repeated_sharded_runs_byte_identical(self, tmp_path):
        _, bus1 = _replay_events("cawa", shards=2)
        _, bus2 = _replay_events("cawa", shards=2)
        a = write_chrome_trace(bus1.events(), tmp_path / "a.json")
        b = write_chrome_trace(bus2.events(), tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()

    def test_three_shards_same_stream(self, tmp_path):
        _, bus1 = _replay_events("rr", shards=1)
        _, bus3 = _replay_events("rr", shards=3)
        a = write_chrome_trace(bus1.events(), tmp_path / "s1.json")
        b = write_chrome_trace(bus3.events(), tmp_path / "s3.json")
        assert a.read_bytes() == b.read_bytes()

    def test_collectors_see_merged_stream(self):
        cfg = apply_scheme(_config().with_shards(2), "gto")
        bus = bus_from_spec("on")
        acct = StallAccounting()
        bus.attach(acct)
        result = trace_mod.replay_program(
            _program(), cfg, scheme="gto", bus=bus
        )[-1]
        assert acct.issue_cycles() == result.warp_instructions
        assert acct.warp_cycles() > acct.issue_cycles()

    def test_run_scheme_events_config_with_shards(self):
        """config.events drives the sharded bus end to end via run_scheme."""
        from repro.experiments.runner import run_scheme

        base = GPUConfig.default_sim(num_sms=NUM_SMS)
        # First call records the trace (execute frontend, serial); the
        # events-on call then replays it sharded.
        run_scheme(WORKLOAD, "gto", scale=SCALE, config=base, shards=2,
                   use_cache=False, persistent=False)
        sharded = run_scheme(WORKLOAD, "gto", scale=SCALE,
                             config=base.with_events("on"),
                             shards=2, use_cache=False, persistent=False)
        assert sharded.shards == 2
        assert sharded.events == "on"
        assert sharded.extra["events_recorded"] > 0


@needs_fork
class TestLiveObserverGuard:
    def test_error_names_observer_classes_and_docs(self):
        class FancyTracer:
            def on_issue(self, sm, warp, inst, now):  # pragma: no cover
                pass

        cfg = apply_scheme(_config().with_shards(2), "rr")
        with pytest.raises(ConfigError, match="observers") as excinfo:
            trace_mod.replay_program(
                _program(), cfg, scheme="rr", observers=[FancyTracer()]
            )
        message = str(excinfo.value)
        assert "FancyTracer" in message
        assert "docs/observability.md" in message
        assert "EventBus" in message
