"""Persistent result cache: round trips, key invalidation, parallel sweeps."""

import json
import os

import pytest

from repro.config import GPUConfig
from repro.experiments import result_cache
from repro.experiments import runner
from repro.experiments.runner import run_scheme, run_sweep
from repro.stats.counters import BlockSummary, RunResult, WarpSummary

SCALE = 0.25
WL = "synthetic_imbalance"


@pytest.fixture(autouse=True)
def fresh_memory_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


def _metrics(result):
    return (result.cycles, result.warp_instructions, result.thread_instructions,
            result.l1_stats.misses, result.l2_stats.misses, result.dram_accesses)


class TestRoundTrip:
    def test_disk_hit_after_memory_cache_cleared(self):
        first = run_scheme(WL, "cawa", scale=SCALE)
        assert len(list(result_cache.cache_dir().glob("*.json"))) >= 1
        runner.clear_cache()  # memory only; disk survives
        second = run_scheme(WL, "cawa", scale=SCALE)
        assert _metrics(second) == _metrics(first)
        assert isinstance(second.blocks[0], BlockSummary)
        assert isinstance(second.blocks[0].warps[0], WarpSummary)

    def test_summaries_duck_type_analyses(self):
        run_scheme(WL, "rr", scale=SCALE)
        runner.clear_cache()
        cached = run_scheme(WL, "rr", scale=SCALE)
        from repro.stats.disparity import critical_warp_of, max_block_disparity
        from repro.stats.export import result_to_json
        assert max_block_disparity(cached) >= 0.0
        assert critical_warp_of(cached.blocks[0]).execution_time >= 0.0
        json.loads(result_to_json(cached))  # export path still serializes

    def test_to_dict_from_dict_is_lossless(self):
        result = run_scheme(WL, "gto", scale=SCALE, use_cache=False,
                            persistent=False)
        clone = RunResult.from_dict(result.to_dict())
        assert _metrics(clone) == _metrics(result)
        assert clone.ipc == result.ipc
        assert [b.warp_execution_times() for b in clone.blocks] == \
               [b.warp_execution_times() for b in result.blocks]

    def test_oracle_builds_from_cached_blocks(self):
        run_scheme(WL, "rr", scale=SCALE)
        runner.clear_cache()
        oracle = runner.build_oracle(WL, scale=SCALE)
        assert oracle and all(t >= 0 for t in oracle.values())


class TestKeyInvalidation:
    def test_config_fingerprint_changes_key(self):
        a = GPUConfig.default_sim().fingerprint()
        b = GPUConfig.default_sim(num_sms=3).fingerprint()
        assert a != b
        assert (result_cache.cache_key(WL, "rr", 1.0, a)
                != result_cache.cache_key(WL, "rr", 1.0, b))

    def test_issue_core_does_not_change_fingerprint(self):
        # The two cores are bit-identical, so they must share cache entries.
        cfg = GPUConfig.default_sim()
        assert cfg.fingerprint() == cfg.with_issue_core("scan").fingerprint()

    def test_clock_and_shards_do_not_change_fingerprint(self):
        # Both knobs are timing-transparent (bit-identical results), so
        # all clock/shard combinations must share one cache entry.
        cfg = GPUConfig.default_sim()
        assert cfg.fingerprint() == cfg.with_clock("skip").fingerprint()
        sharded = cfg.with_frontend("trace").with_shards(4)
        assert cfg.fingerprint() == sharded.fingerprint()

    def test_cycle_entry_served_for_skip_request(self):
        # A result simulated under clock='cycle' must satisfy a later
        # clock='skip' request without re-simulating (and vice versa).
        cfg = GPUConfig.default_sim()
        first = run_scheme(WL, "rr", scale=SCALE, config=cfg)
        entries = list(result_cache.cache_dir().glob("*.json"))
        assert len(entries) == 1
        runner.clear_cache()  # memory only; the disk entry survives
        second = run_scheme(WL, "rr", scale=SCALE,
                            config=cfg.with_clock("skip"))
        # Same entry count (no new simulation stored) and a disk-shaped
        # result (BlockSummary blocks) prove the cache hit.
        assert len(list(result_cache.cache_dir().glob("*.json"))) == 1
        assert isinstance(second.blocks[0], BlockSummary)
        assert _metrics(second) == _metrics(first)

    def test_version_changes_key(self, monkeypatch):
        key = result_cache.cache_key(WL, "rr", 1.0, "abc")
        monkeypatch.setattr(result_cache, "__version__", "999.0.0")
        assert result_cache.cache_key(WL, "rr", 1.0, "abc") != key

    def test_scale_and_scheme_change_key(self):
        fp = GPUConfig.default_sim().fingerprint()
        base = result_cache.cache_key(WL, "rr", 1.0, fp)
        assert result_cache.cache_key(WL, "rr", 0.5, fp) != base
        assert result_cache.cache_key(WL, "gto", 1.0, fp) != base
        assert result_cache.cache_key(WL, "rr", 1.0, fp, with_accuracy=True) != base

    def test_stale_version_entry_misses(self, monkeypatch):
        run_scheme(WL, "rr", scale=SCALE)  # populate under current version
        runner.clear_cache()
        monkeypatch.setattr(result_cache, "__version__", "999.0.0")
        fp = GPUConfig.default_sim().fingerprint()
        key = result_cache.cache_key(WL, "rr", SCALE, fp)
        assert result_cache.load(key) is None


class TestRobustness:
    def test_corrupt_entry_is_a_miss_and_removed(self):
        result = run_scheme(WL, "rr", scale=SCALE)
        entries = list(result_cache.cache_dir().glob("*.json"))
        assert entries
        entries[0].write_text("{not json", encoding="utf-8")
        key = entries[0].stem
        assert result_cache.load(key) is None
        assert not entries[0].exists()
        # And run_scheme falls back to simulating.
        runner.clear_cache()
        again = run_scheme(WL, "rr", scale=SCALE)
        assert again.cycles == result.cycles

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(result_cache.ENV_ENABLE, "0")
        run_scheme(WL, "rr", scale=SCALE)
        assert not list(result_cache.cache_dir().glob("*.json"))

    def test_clear_cache_disk_flag(self):
        run_scheme(WL, "rr", scale=SCALE)
        assert list(result_cache.cache_dir().glob("*.json"))
        runner.clear_cache(disk=True)
        assert not list(result_cache.cache_dir().glob("*.json"))

    def test_non_cacheable_runs_do_not_touch_disk(self):
        run_scheme("bfs", "rr", scale=SCALE, balanced=True)  # workload kwargs
        run_scheme(WL, "rr", scale=SCALE, with_reuse=True)  # live profiler
        assert not list(result_cache.cache_dir().glob("*.json"))


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        serial = run_sweep([WL], ["rr", "gto"], scale=SCALE,
                           use_cache=False, persistent=False)
        parallel = run_sweep([WL, "synthetic_divergence"], ["rr", "gto"],
                             scale=SCALE, parallel=True, max_workers=2)
        for cell in serial:
            assert parallel[cell].cycles == serial[cell].cycles
            assert (parallel[cell].l1_stats.misses
                    == serial[cell].l1_stats.misses)
        assert isinstance(parallel[(WL, "rr")].blocks[0], BlockSummary)

    def test_parallel_workers_populate_disk_cache(self):
        run_sweep([WL], ["rr", "gto"], scale=SCALE, parallel=True,
                  max_workers=2)
        names = [p.name for p in result_cache.cache_dir().glob("*.json")]
        assert any(name.startswith(f"{WL}-rr-") for name in names)
        assert any(name.startswith(f"{WL}-gto-") for name in names)
