"""Tests for the functional executor: opcode semantics over lanes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instructions import CmpOp, Instruction, MemSpace, Opcode, Special
from repro.memory.data import GlobalMemory
from repro.simt.block import ThreadBlock
from repro.simt.executor import FunctionalExecutor
from repro.simt.warp import Warp
from repro.isa.kernel import KernelBuilder


WARP = 32


def make_warp(num_regs=16, num_preds=4, block_dim=WARP):
    b = KernelBuilder("t")
    b.nop()
    kernel = b.build()
    kernel.num_regs = num_regs
    kernel.num_preds = num_preds
    block = ThreadBlock(0, block_dim, 1, kernel, WARP)
    return Warp(0, block, WARP, num_regs, num_preds, dynamic_id=0)


@pytest.fixture
def env():
    mem = GlobalMemory()
    execu = FunctionalExecutor(mem, WARP)
    warp = make_warp()
    return mem, execu, warp


class TestALU:
    def test_add_registers(self, env):
        _, execu, warp = env
        warp.rf.regs[0] = np.arange(WARP)
        warp.rf.regs[1] = 2.0
        execu.execute(Instruction(Opcode.ADD, dst=2, srcs=(0, 1), pc=0), warp)
        assert np.array_equal(warp.rf.regs[2], np.arange(WARP) + 2.0)

    def test_add_immediate(self, env):
        _, execu, warp = env
        warp.rf.regs[0] = np.arange(WARP)
        execu.execute(Instruction(Opcode.ADD, dst=1, srcs=(0,), imm=5.0, pc=0), warp)
        assert np.array_equal(warp.rf.regs[1], np.arange(WARP) + 5.0)

    def test_div_by_zero_yields_zero(self, env):
        _, execu, warp = env
        warp.rf.regs[0] = 10.0
        warp.rf.regs[1] = 0.0
        execu.execute(Instruction(Opcode.DIV, dst=2, srcs=(0, 1), pc=0), warp)
        assert np.all(warp.rf.regs[2] == 0.0)

    def test_mad_with_imm_multiplier(self, env):
        _, execu, warp = env
        warp.rf.regs[0] = np.arange(WARP)
        warp.rf.regs[1] = 3.0
        execu.execute(
            Instruction(Opcode.MAD, dst=2, srcs=(0, 1), imm=8.0, pc=0), warp
        )
        assert np.array_equal(warp.rf.regs[2], np.arange(WARP) * 8.0 + 3.0)

    def test_bitwise_ops_cast_through_int(self, env):
        _, execu, warp = env
        warp.rf.regs[0] = 0b1100
        warp.rf.regs[1] = 0b1010
        execu.execute(Instruction(Opcode.AND, dst=2, srcs=(0, 1), pc=0), warp)
        execu.execute(Instruction(Opcode.OR, dst=3, srcs=(0, 1), pc=0), warp)
        execu.execute(Instruction(Opcode.XOR, dst=4, srcs=(0, 1), pc=0), warp)
        assert np.all(warp.rf.regs[2] == 0b1000)
        assert np.all(warp.rf.regs[3] == 0b1110)
        assert np.all(warp.rf.regs[4] == 0b0110)

    def test_shifts(self, env):
        _, execu, warp = env
        warp.rf.regs[0] = 3.0
        execu.execute(Instruction(Opcode.SHL, dst=1, srcs=(0,), imm=4.0, pc=0), warp)
        assert np.all(warp.rf.regs[1] == 48.0)
        execu.execute(Instruction(Opcode.SHR, dst=2, srcs=(1,), imm=4.0, pc=0), warp)
        assert np.all(warp.rf.regs[2] == 3.0)

    def test_sfu_domain_safety(self, env):
        _, execu, warp = env
        warp.rf.regs[0] = -1.0
        execu.execute(Instruction(Opcode.SQRT, dst=1, srcs=(0,), pc=0), warp)
        execu.execute(Instruction(Opcode.LOG, dst=2, srcs=(0,), pc=0), warp)
        assert np.all(np.isfinite(warp.rf.regs[1]))
        assert np.all(np.isfinite(warp.rf.regs[2]))

    def test_guard_predicate_masks_write(self, env):
        _, execu, warp = env
        warp.rf.preds[0] = np.arange(WARP) % 2 == 0
        warp.rf.regs[0] = 7.0
        warp.rf.regs[1] = 0.0
        execu.execute(
            Instruction(Opcode.MOV, dst=1, srcs=(0,), pred=0, pc=0), warp
        )
        expected = np.where(np.arange(WARP) % 2 == 0, 7.0, 0.0)
        assert np.array_equal(warp.rf.regs[1], expected)

    def test_guard_predicate_negated(self, env):
        _, execu, warp = env
        warp.rf.preds[0] = np.arange(WARP) % 2 == 0
        warp.rf.regs[0] = 7.0
        execu.execute(
            Instruction(Opcode.MOV, dst=1, srcs=(0,), pred=0, pred_neg=True, pc=0),
            warp,
        )
        expected = np.where(np.arange(WARP) % 2 == 1, 7.0, 0.0)
        assert np.array_equal(warp.rf.regs[1], expected)


class TestPredicatesAndSelect:
    def test_setp_all_compares(self, env):
        _, execu, warp = env
        warp.rf.regs[0] = np.arange(WARP)
        cases = {
            CmpOp.LT: np.arange(WARP) < 16,
            CmpOp.LE: np.arange(WARP) <= 16,
            CmpOp.GT: np.arange(WARP) > 16,
            CmpOp.GE: np.arange(WARP) >= 16,
            CmpOp.EQ: np.arange(WARP) == 16,
            CmpOp.NE: np.arange(WARP) != 16,
        }
        for cmp, expected in cases.items():
            execu.execute(
                Instruction(Opcode.SETP, dst=0, srcs=(0,), imm=16.0, cmp=cmp, pc=0),
                warp,
            )
            assert np.array_equal(warp.rf.preds[0], expected), cmp

    def test_selp(self, env):
        _, execu, warp = env
        warp.rf.preds[0] = np.arange(WARP) < 8
        warp.rf.regs[0] = 1.0
        warp.rf.regs[1] = 2.0
        execu.execute(
            Instruction(Opcode.SELP, dst=2, srcs=(0, 1), pred=0, pc=0), warp
        )
        expected = np.where(np.arange(WARP) < 8, 1.0, 2.0)
        assert np.array_equal(warp.rf.regs[2], expected)


class TestBranch:
    def test_unconditional_branch_takes_all_active(self, env):
        _, execu, warp = env
        result = execu.execute(Instruction(Opcode.BRA, target_pc=5, pc=0), warp)
        assert result.taken_mask == warp.active_mask

    def test_conditional_branch_taken_mask(self, env):
        _, execu, warp = env
        warp.rf.preds[0] = np.arange(WARP) < 4
        result = execu.execute(
            Instruction(Opcode.BRA, pred=0, target_pc=5, pc=0), warp
        )
        assert result.taken_mask == 0b1111

    def test_conditional_branch_negated(self, env):
        _, execu, warp = env
        warp.rf.preds[0] = np.arange(WARP) < 4
        result = execu.execute(
            Instruction(Opcode.BRA, pred=0, pred_neg=True, target_pc=5, pc=0), warp
        )
        assert result.taken_mask == warp.active_mask & ~0b1111


class TestMemoryOps:
    def test_load_gathers_per_lane(self, env):
        mem, execu, warp = env
        base = mem.alloc_array(np.arange(WARP, dtype=float) * 10)
        warp.rf.regs[0] = base + np.arange(WARP) * 8.0
        result = execu.execute(Instruction(Opcode.LD, dst=1, srcs=(0,), imm=0.0, pc=0), warp)
        assert np.array_equal(warp.rf.regs[1], np.arange(WARP) * 10.0)
        assert result.mem_mask == warp.active_mask

    def test_store_scatters(self, env):
        mem, execu, warp = env
        base = mem.alloc_array(np.zeros(WARP))
        warp.rf.regs[0] = base + np.arange(WARP) * 8.0
        warp.rf.regs[1] = np.arange(WARP, dtype=float) + 1
        execu.execute(Instruction(Opcode.ST, srcs=(0, 1), imm=0.0, pc=0), warp)
        assert np.array_equal(mem.read_array(base, WARP), np.arange(WARP) + 1.0)

    def test_shared_memory_roundtrip(self, env):
        _, execu, warp = env
        warp.block.kernel.shared_mem_bytes = 0  # uses the 1-word minimum
        warp.rf.regs[0] = 0.0  # all lanes address shared word 0
        warp.rf.regs[1] = 42.0
        execu.execute(
            Instruction(Opcode.ST, srcs=(0, 1), imm=0.0, space=MemSpace.SHARED, pc=0),
            warp,
        )
        execu.execute(
            Instruction(Opcode.LD, dst=2, srcs=(0,), imm=0.0, space=MemSpace.SHARED, pc=0),
            warp,
        )
        assert np.all(warp.rf.regs[2] == 42.0)

    def test_predicated_load_skips_inactive_lanes(self, env):
        mem, execu, warp = env
        base = mem.alloc_array(np.ones(4))
        # Only lane 0 has a valid address; others point far out of bounds
        # but are predicated off, so no error may be raised.
        warp.rf.preds[0] = np.arange(WARP) == 0
        addrs = np.full(WARP, 10_000_000.0)
        addrs[0] = base
        warp.rf.regs[0] = addrs
        execu.execute(
            Instruction(Opcode.LD, dst=1, srcs=(0,), imm=0.0, pred=0, pc=0), warp
        )
        assert warp.rf.regs[1][0] == 1.0


class TestSpecials:
    def test_sreg_values(self, env):
        _, execu, warp = env
        for special, expected in [
            (Special.TID, np.arange(WARP)),
            (Special.LANEID, np.arange(WARP)),
            (Special.CTAID, np.zeros(WARP)),
            (Special.NTID, np.full(WARP, WARP)),
            (Special.GTID, np.arange(WARP)),
            (Special.WARPID, np.zeros(WARP)),
        ]:
            execu.execute(Instruction(Opcode.SREG, dst=0, special=special, pc=0), warp)
            assert np.array_equal(warp.rf.regs[0], expected), special


@settings(max_examples=50, deadline=None)
@given(
    op=st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MIN, Opcode.MAX]),
    a=st.lists(st.floats(-1e6, 1e6), min_size=WARP, max_size=WARP),
    b=st.lists(st.floats(-1e6, 1e6), min_size=WARP, max_size=WARP),
)
def test_prop_binary_ops_match_numpy(op, a, b):
    mem = GlobalMemory()
    execu = FunctionalExecutor(mem, WARP)
    warp = make_warp()
    av, bv = np.array(a), np.array(b)
    warp.rf.regs[0] = av
    warp.rf.regs[1] = bv
    execu.execute(Instruction(op, dst=2, srcs=(0, 1), pc=0), warp)
    reference = {
        Opcode.ADD: av + bv,
        Opcode.SUB: av - bv,
        Opcode.MUL: av * bv,
        Opcode.MIN: np.minimum(av, bv),
        Opcode.MAX: np.maximum(av, bv),
    }[op]
    assert np.array_equal(warp.rf.regs[2], reference)
