"""Seeded violation: a clock-driven component the skip clock cannot see.

``Engine`` defines ``tick`` in a timing-path module but neither defines
nor inherits ``next_event_time()``/``next_wake_time()`` (CLK001).
"""


class Engine:
    def tick(self, now):
        return False
