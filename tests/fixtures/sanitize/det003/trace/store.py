"""Seeded violation: iterates glob results in filesystem order (DET003)."""

from pathlib import Path


def purge(directory: Path) -> int:
    removed = 0
    for path in directory.glob("*.trace"):
        path.unlink()
        removed += 1
    return removed
