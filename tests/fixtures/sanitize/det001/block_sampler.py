"""Seeded violation: a block sampler on an unseeded RNG (DET001).

A subset selected this way would differ between two runs of the same
configuration, silently breaking sampled-replay determinism and the
calibration guarantee that a calibrated cell replays the exact subset
its envelope was measured on.  The real sampler derives its generator
from the config (``repro.sampling.spec.derive_rng``).
"""

import random


def select_blocks(block_ids, rate):
    rng = random.Random()
    count = max(1, int(rate * len(block_ids)))
    return sorted(rng.sample(list(block_ids), count))
