"""Seeded violation: draws from the process-global RNG (DET001)."""

import random


def jitter():
    return random.random()
