"""Miniature config module: one fingerprinted knob, one excluded knob.

FPR001 parses this statically (never imports it) to learn the field set
and the declared exclusion list, mirroring the real ``repro/config.py``.
"""

from dataclasses import dataclass
from typing import ClassVar, FrozenSet


@dataclass(frozen=True)
class GPUConfig:
    num_sms: int = 2
    backend: str = "python"

    FINGERPRINT_EXCLUDED: ClassVar[FrozenSet[str]] = frozenset({
        "backend",
    })
