"""Seeded violation: an unwaived excluded-field read on the timing path.

``backend`` is on the exclusion list, so reading it from ``sm/`` without
a ``# sanitize: waive FPR001`` rationale must fire FPR001.  The
``num_sms`` read is fingerprinted and must stay silent.
"""


class Unit:
    def __init__(self, config):
        self.width = config.num_sms
        self.fast = config.backend == "vector"
