"""Seeded violation: an override that drops an emission site (OBS001).

``Twin.probe`` overrides ``Scalar.probe`` without calling ``super()`` and
without emitting ``Ev.PING`` itself, so the twin's event stream silently
diverges from the scalar's.
"""


class Scalar:
    def probe(self, now):
        self.obs.emit((Ev.PING, now, self.sm_id))


class Twin(Scalar):
    def probe(self, now):
        self.count += 1
