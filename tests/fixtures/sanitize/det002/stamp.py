"""Seeded violation: reads the host wall clock outside serve/ (DET002)."""

import time


def stamp():
    return time.time()
