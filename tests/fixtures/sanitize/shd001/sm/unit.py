"""Seeded violation: worker-closure module importing coordinator state.

``sm/`` modules run inside forked shard workers; importing the
coordinator-owned L2 into the closure (SHD001) means a worker would
operate on its fork-time copy and silently diverge from serial replay.
"""

from ..memory.l2 import BankedL2


class Unit:
    def __init__(self, l2: BankedL2) -> None:
        self.l2 = l2
