"""Seeded violation: an override that drops a publish site (FBK001).

``VectorCache._evict`` overrides ``ScalarCache._evict`` without calling
``super()`` and without publishing ``Sig.EVICT`` itself, so the vector
twin's feedback signal stream silently diverges from the scalar's — and
with it every feedback-consuming scheduler's issue decisions.
"""


class ScalarCache:
    def _evict(self, line, req):
        self.fb.publish((Sig.EVICT, self.now, self.fb_owner))


class VectorCache(ScalarCache):
    def _evict(self, line, req):
        self.victims += 1
