"""Tests for the block dispatcher and SM occupancy accounting."""

import numpy as np
import pytest

from repro import GPU, GPUConfig
from repro.isa.kernel import KernelBuilder
from repro.sm.dispatcher import BlockDispatcher


def trivial_kernel(num_regs=4):
    b = KernelBuilder("t")
    regs = b.regs(num_regs)
    b.mov(regs[0], 1.0)
    kernel = b.build()
    assert kernel.num_regs == num_regs
    return kernel


def make_gpu(**overrides):
    return GPU(GPUConfig.default_sim(**overrides))


class TestOccupancyLimits:
    def test_block_count_limit(self):
        gpu = make_gpu(num_sms=1, max_blocks_per_sm=2, max_warps_per_sm=16)
        sm = gpu.sms[0]
        kernel = trivial_kernel()
        dispatcher = BlockDispatcher(kernel, 5, 32, 32)
        dispatcher.try_dispatch([sm], 0.0)
        assert len(sm.blocks) == 2
        assert dispatcher.pending == 3

    def test_warp_count_limit(self):
        gpu = make_gpu(num_sms=1, max_blocks_per_sm=8, max_warps_per_sm=16)
        sm = gpu.sms[0]
        kernel = trivial_kernel()
        # Blocks of 8 warps: only 2 fit in 16 warp slots.
        dispatcher = BlockDispatcher(kernel, 4, 256, 32)
        dispatcher.try_dispatch([sm], 0.0)
        assert len(sm.blocks) == 2

    def test_register_limit(self):
        gpu = make_gpu(num_sms=1, registers_per_sm=2048)
        sm = gpu.sms[0]
        kernel = trivial_kernel(num_regs=16)  # 16 regs * 64 threads = 1024
        dispatcher = BlockDispatcher(kernel, 4, 64, 32)
        dispatcher.try_dispatch([sm], 0.0)
        assert len(sm.blocks) == 2  # 2 * 1024 = 2048 registers exactly

    def test_registers_freed_on_commit(self):
        gpu = make_gpu(num_sms=1, registers_per_sm=2048)
        sm = gpu.sms[0]
        kernel = trivial_kernel(num_regs=16)
        dispatcher = BlockDispatcher(kernel, 2, 64, 32)
        dispatcher.try_dispatch([sm], 0.0)
        block = sm.blocks[0]
        for warp in list(block.warps):
            warp.mark_finished(1.0)
        sm._commit_block(block)
        assert sm._regs_in_use == 1024


class TestDispatchOrder:
    def test_blocks_dispatched_in_id_order(self):
        gpu = make_gpu(num_sms=1)
        sm = gpu.sms[0]
        dispatcher = BlockDispatcher(trivial_kernel(), 3, 32, 32)
        dispatcher.try_dispatch([sm], 0.0)
        assert [b.block_id for b in sm.blocks] == [0, 1, 2]

    def test_least_loaded_sm_first(self):
        gpu = make_gpu(num_sms=2)
        dispatcher = BlockDispatcher(trivial_kernel(), 2, 32, 32)
        dispatcher.try_dispatch(gpu.sms, 0.0)
        assert len(gpu.sms[0].blocks) == 1
        assert len(gpu.sms[1].blocks) == 1

    def test_exhausted_flag(self):
        gpu = make_gpu(num_sms=2)
        dispatcher = BlockDispatcher(trivial_kernel(), 2, 32, 32)
        assert not dispatcher.exhausted
        dispatcher.try_dispatch(gpu.sms, 0.0)
        assert dispatcher.exhausted
        assert dispatcher.dispatched == 2

    def test_warp_dynamic_ids_monotonic(self):
        gpu = make_gpu(num_sms=1)
        sm = gpu.sms[0]
        dispatcher = BlockDispatcher(trivial_kernel(), 2, 64, 32)
        dispatcher.try_dispatch([sm], 0.0)
        ids = [w.dynamic_id for w in sm.warps]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)
