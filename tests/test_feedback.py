"""Unit tests for repro.feedback: schema, channel, wiring guards, schemes.

The runtime contracts (cross-mode stream identity, CAWA bit-identity) live
in ``test_feedback_determinism.py`` / ``test_feedback_parity.py``; this
file covers the pieces in isolation: the signal schema, the
publish/subscribe channel, the eager config-time validation satellites,
the direct-mode guard, and the three feedback-consuming schedulers driven
by hand-crafted signal streams.
"""

import pytest

from repro import GPU
from repro.config import GPUConfig
from repro.errors import ConfigError
from repro.feedback.channel import FeedbackChannel, SignalTap
from repro.feedback.signals import (
    LEVEL_L1D,
    LEVEL_L2,
    Sig,
    SignalSchemaError,
    merge_signal_streams,
    schema_table,
    signal_to_dict,
    sort_signals,
    validate_signal,
    validate_signals,
)
from repro.scheduling import ccws as ccws_mod
from repro.scheduling import ciao as ciao_mod
from repro.scheduling import wasp as wasp_mod
from repro.scheduling.ccws import CCWSScheduler
from repro.scheduling.ciao import CIAOScheduler
from repro.scheduling.registry import (
    SCHEDULERS,
    make_scheduler,
    scheduler_info,
    scheduler_names,
)
from repro.scheduling.wasp import WaSPScheduler
from repro.simt.warp import WarpStatus

MISS = (int(Sig.MISS), 10.0, 0, LEVEL_L1D, 1, 2, 0x400, 7)
FILL = (int(Sig.FILL), 11.0, 0, LEVEL_L1D, 1, 2, 0x400, 0)
EVICT = (int(Sig.EVICT), 12.0, 0, LEVEL_L1D, 0, 3, 0x200, 1, 1, 2)


# ----------------------------------------------------------------------
# Signal schema
# ----------------------------------------------------------------------
class TestSchema:
    @pytest.mark.parametrize("record", [MISS, FILL, EVICT])
    def test_valid_records_pass(self, record):
        validate_signal(record)

    def test_too_short_rejected(self):
        with pytest.raises(SignalSchemaError, match="too short"):
            validate_signal((int(Sig.MISS), 1.0))

    def test_unknown_kind_rejected(self):
        with pytest.raises(SignalSchemaError, match="unknown signal kind"):
            validate_signal((99, 1.0, 0, LEVEL_L1D))

    def test_wrong_arity_rejected(self):
        with pytest.raises(SignalSchemaError, match="MISS"):
            validate_signal(MISS + (123,))

    def test_validate_signals_counts(self):
        assert validate_signals([MISS, FILL, EVICT]) == 3

    def test_signal_to_dict_names_fields(self):
        d = signal_to_dict(EVICT)
        assert d["kind"] == "EVICT"
        assert d["cycle"] == 12.0
        assert d["victim_block"] == 0
        assert d["victim_warp"] == 3
        assert d["reused"] == 1
        assert d["evictor_block"] == 1
        assert d["evictor_warp"] == 2

    def test_sort_is_cycle_sm_kind_order(self):
        a = (int(Sig.MISS), 5.0, 1, LEVEL_L1D, 0, 0, 0x100, 0)
        b = (int(Sig.MISS), 5.0, 0, LEVEL_L1D, 0, 0, 0x100, 0)
        c = (int(Sig.FILL), 4.0, 2, LEVEL_L1D, 0, 0, 0x100, 0)
        assert sort_signals([a, b, c]) == [c, b, a]

    def test_merge_is_sort_of_concatenation(self):
        s1, s2 = [MISS, EVICT], [FILL]
        assert merge_signal_streams([s1, s2]) == sort_signals(s1 + s2)

    def test_schema_table_lists_every_kind(self):
        table = schema_table()
        for kind in Sig:
            assert kind.name in table

    def test_l2_level_code_distinct(self):
        assert LEVEL_L1D != LEVEL_L2


# ----------------------------------------------------------------------
# Channel + tap
# ----------------------------------------------------------------------
class TestChannel:
    def test_publish_dispatches_by_kind_in_subscription_order(self):
        ch = FeedbackChannel(0)
        got = []
        ch.subscribe((Sig.MISS,), lambda r: got.append(("first", r)))
        ch.subscribe((Sig.MISS, Sig.EVICT), lambda r: got.append(("second", r)))
        ch.publish(MISS)
        ch.publish(FILL)  # nobody subscribed
        ch.publish(EVICT)
        assert got == [("first", MISS), ("second", MISS), ("second", EVICT)]

    def test_unknown_kind_subscription_fails_loudly(self):
        with pytest.raises(ValueError):
            FeedbackChannel(0).subscribe((99,), lambda r: None)

    def test_tap_records_even_unsubscribed_kinds(self):
        ch = FeedbackChannel(0)
        ch.tap = tap = SignalTap()
        ch.publish(MISS)
        ch.publish(FILL)
        assert tap.records == [MISS, FILL]
        assert len(tap) == 2
        assert tap.drain() == [MISS, FILL]
        assert len(tap) == 0

    def test_publish_checked_validates(self):
        ch = FeedbackChannel(0)
        ch.publish_checked(MISS)
        with pytest.raises(SignalSchemaError):
            ch.publish_checked((99, 1.0, 0))

    def test_subscription_introspection(self):
        ch = FeedbackChannel(0)
        assert not ch.has_subscribers()
        ch.subscribe((Sig.EVICT, Sig.MISS), lambda r: None)
        assert ch.has_subscribers()
        assert ch.subscribed_kinds() == (int(Sig.MISS), int(Sig.EVICT))


# ----------------------------------------------------------------------
# Config-time validation satellites + direct-mode guard
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_unknown_scheduler_fails_at_config_time(self):
        with pytest.raises(ConfigError, match="bogus") as err:
            GPUConfig.default_sim().with_scheduler("bogus")
        # The error must list the registered names.
        for name in ("gto", "ccws", "wasp", "ciao"):
            assert name in str(err.value)

    def test_unknown_scheduler_fails_in_constructor_too(self):
        with pytest.raises(ConfigError, match="bogus"):
            GPUConfig.default_sim(scheduler_name="bogus")

    def test_every_registered_name_is_accepted(self):
        for name in scheduler_names():
            assert GPUConfig.default_sim().with_scheduler(name).scheduler_name == name

    def test_feedback_mode_validated(self):
        with pytest.raises(ConfigError, match="feedback"):
            GPUConfig.default_sim(feedback="bogus")

    def test_with_feedback_round_trip(self):
        cfg = GPUConfig.default_sim()
        assert cfg.feedback == "channel"
        assert cfg.with_feedback("direct").feedback == "direct"

    def test_feedback_mode_is_fingerprint_transparent(self):
        cfg = GPUConfig.default_sim()
        assert cfg.fingerprint() == cfg.with_feedback("direct").fingerprint()

    @pytest.mark.parametrize("scheme", ["ccws", "wasp", "ciao"])
    def test_direct_mode_rejects_feedback_consumers(self, scheme):
        cfg = GPUConfig.default_sim(feedback="direct").with_scheduler(scheme)
        with pytest.raises(ConfigError, match=scheme):
            GPU(cfg)

    def test_direct_mode_accepts_feedback_oblivious_schedulers(self):
        GPU(GPUConfig.default_sim(feedback="direct").with_scheduler("gcaws"))


# ----------------------------------------------------------------------
# Registry metadata
# ----------------------------------------------------------------------
class TestRegistry:
    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="ccws"):
            make_scheduler("bogus")

    def test_every_scheduler_has_a_description(self):
        for name in SCHEDULERS:
            description, _ = scheduler_info(name)
            assert description, f"{name} has no DESCRIPTION"

    def test_feedback_kinds_are_valid_sig_values(self):
        for name in SCHEDULERS:
            _, kinds = scheduler_info(name)
            for kind in kinds:
                Sig(kind)  # raises on junk

    def test_consumer_subscriptions(self):
        assert set(scheduler_info("ccws")[1]) == {int(Sig.EVICT), int(Sig.MISS)}
        assert set(scheduler_info("wasp")[1]) == {int(Sig.EVICT)}
        assert set(scheduler_info("ciao")[1]) == {int(Sig.EVICT)}
        assert scheduler_info("gto")[1] == ()


# ----------------------------------------------------------------------
# Scheduler units, driven by hand-crafted signals
# ----------------------------------------------------------------------
class _Block:
    def __init__(self, block_id):
        self.block_id = block_id


class _StubWarp:
    """The scheduler-visible slice of a warp."""

    def __init__(self, dynamic_id, block_id=0, warp_id_in_block=None):
        self.dynamic_id = dynamic_id
        self.block = _Block(block_id)
        self.warp_id_in_block = (
            warp_id_in_block if warp_id_in_block is not None else dynamic_id
        )
        self.status = WarpStatus.RUNNING
        self.issued_instructions = 0


def _evict(victim, evictor, line_addr, reused=0, cycle=1.0):
    return (
        int(Sig.EVICT), cycle, 0, LEVEL_L1D,
        victim.block.block_id, victim.warp_id_in_block, line_addr, reused,
        evictor.block.block_id, evictor.warp_id_in_block,
    )


def _miss(warp, line_addr, cycle=1.0):
    return (
        int(Sig.MISS), cycle, 0, LEVEL_L1D,
        warp.block.block_id, warp.warp_id_in_block, line_addr, 0,
    )


class TestCCWSUnit:
    def _scheduler(self, n=4):
        sched = CCWSScheduler()
        warps = [_StubWarp(i) for i in range(n)]
        for w in warps:
            sched.notify_warp_added(w)
        return sched, warps

    def test_no_lost_locality_degenerates_to_round_robin(self):
        sched, warps = self._scheduler()
        assert sched.select(warps, 1.0) is warps[0]
        sched.notify_issue(warps[0], 1.0)
        assert sched.select(warps, 2.0) is warps[1]

    def test_vta_hit_throttles_the_tail(self):
        sched, warps = self._scheduler()
        # Warp 0 loses a line, then misses on it: lost locality detected.
        sched.on_signal(_evict(warps[0], warps[1], 0x400, cycle=1.0))
        sched.on_signal(_miss(warps[0], 0x400, cycle=2.0))
        # Scores now (228, 100, 100, 100); cutoff 400 -> prefix of 3.
        allowed = sched._allowed(2.0)
        assert allowed == {(0, 0), (0, 1), (0, 2)}
        # A slot offering only the throttled warp is declined ...
        assert sched.select([warps[3]], 2.0) is None
        # ... while the locality-heavy warp wins a mixed slot.
        sched._last_id = -1
        assert sched.select([warps[0], warps[3]], 2.0) is warps[0]

    def test_score_decays_back_to_baseline(self):
        sched, warps = self._scheduler()
        sched.on_signal(_evict(warps[0], warps[1], 0x400, cycle=1.0))
        sched.on_signal(_miss(warps[0], 0x400, cycle=2.0))
        assert sched._allowed(2.0) is not None
        later = 2.0 + ccws_mod.DECAY_PERIOD * ccws_mod.VTA_BUMP
        assert sched._allowed(later) is None  # throttle released

    def test_vta_capacity_is_lru(self):
        sched, warps = self._scheduler(1)
        for i in range(ccws_mod.VTA_ENTRIES + 2):
            sched.on_signal(_evict(warps[0], warps[0], 0x1000 + i))
        loc = sched._warps[(0, 0)]
        assert len(loc.vta) == ccws_mod.VTA_ENTRIES
        assert 0x1000 not in loc.vta and 0x1001 not in loc.vta

    def test_untracked_warp_signals_ignored(self):
        sched, warps = self._scheduler(1)
        stranger = _StubWarp(99, block_id=7)
        sched.on_signal(_miss(stranger, 0x400))  # other slot's warp
        assert sched._warps[(0, 0)].bonus == 0.0


class TestWaSPUnit:
    def _scheduler(self, n=8):
        sched = WaSPScheduler()
        warps = [_StubWarp(i) for i in range(n)]
        for w in warps:
            sched.notify_warp_added(w)
        return sched, warps

    def test_prefetchers_run_ahead_first(self):
        sched, warps = self._scheduler()
        # Warps 0 and 4 are prefetchers (stride 4); 0 is oldest.
        assert sched.select(list(warps), 1.0) is warps[0]

    def test_lead_limit_benches_runaway_prefetchers(self):
        sched, warps = self._scheduler()
        for w in warps:
            if wasp_mod._is_prefetcher(w):
                w.issued_instructions = wasp_mod.MAX_LEAD  # at the limit
        # Prefetchers are out of lead; greedy/oldest takes over.
        pick = sched.select([warps[1], warps[2], warps[5]], 1.0)
        assert pick is warps[1]

    def test_wasted_window_halves_the_lead(self):
        sched, warps = self._scheduler()
        assert sched._max_lead == wasp_mod.MAX_LEAD
        for _ in range(wasp_mod.ADAPT_WINDOW):
            sched.on_signal(_evict(warps[0], warps[1], 0x400, reused=0))
        assert sched._max_lead == wasp_mod.MAX_LEAD // 2

    def test_useful_window_grows_the_lead_back(self):
        sched, warps = self._scheduler()
        sched._max_lead = wasp_mod.MIN_LEAD
        for _ in range(wasp_mod.ADAPT_WINDOW):
            sched.on_signal(_evict(warps[0], warps[1], 0x400, reused=1))
        assert sched._max_lead == wasp_mod.MIN_LEAD + wasp_mod.LEAD_STEP

    def test_follower_evictions_do_not_adapt(self):
        sched, warps = self._scheduler()
        for _ in range(wasp_mod.ADAPT_WINDOW):
            sched.on_signal(_evict(warps[1], warps[2], 0x400, reused=0))
        assert sched._max_lead == wasp_mod.MAX_LEAD


class TestCIAOUnit:
    def _scheduler(self, n=2):
        sched = CIAOScheduler()
        warps = [_StubWarp(i) for i in range(n)]
        for w in warps:
            sched.notify_warp_added(w)
        return sched, warps

    def _saturate(self, sched, victim, evictor, cycle=1.0):
        bumps = int(ciao_mod.SCORE_HI / ciao_mod.BUMP_REUSED)
        for _ in range(bumps):
            sched.on_signal(_evict(victim, evictor, 0x400, reused=1, cycle=cycle))

    def test_interferer_is_throttled(self):
        sched, (w0, w1) = self._scheduler()
        self._saturate(sched, victim=w1, evictor=w0)
        assert sched.select([w0, w1], 1.0) is w1

    def test_all_throttled_still_makes_progress(self):
        sched, (w0, w1) = self._scheduler()
        self._saturate(sched, victim=w1, evictor=w0)
        assert sched.select([w0], 1.0) is w0

    def test_hysteresis_releases_after_decay(self):
        sched, (w0, w1) = self._scheduler()
        self._saturate(sched, victim=w1, evictor=w0, cycle=1.0)
        entry = sched._warps[(0, 0)]
        assert entry.is_throttled(1.0)
        # Still benched above the low-water mark ...
        mid = 1.0 + ciao_mod.DECAY_PERIOD * (
            (ciao_mod.SCORE_HI - ciao_mod.SCORE_LO) / 2
        )
        assert entry.is_throttled(mid)
        # ... released once decayed to SCORE_LO.
        late = 1.0 + ciao_mod.DECAY_PERIOD * (
            ciao_mod.SCORE_HI - ciao_mod.SCORE_LO
        )
        assert not entry.is_throttled(late)

    def test_self_eviction_is_not_interference(self):
        sched, (w0, w1) = self._scheduler()
        sched.on_signal(_evict(w0, w0, 0x400, reused=1))
        assert sched._warps[(0, 0)].score == 0.0

    def test_unattributed_victim_ignored(self):
        sched, (w0, w1) = self._scheduler()
        record = (
            int(Sig.EVICT), 1.0, 0, LEVEL_L1D,
            -1, -1, 0x400, 0,
            w0.block.block_id, w0.warp_id_in_block,
        )
        sched.on_signal(record)
        assert sched._warps[(0, 0)].score == 0.0
