"""Tests for the experiment harness (runner, sweeps, oracle, figures)."""

import pytest

from repro.config import GPUConfig
from repro.experiments import result_cache, runner
from repro.experiments.runner import (
    _dedupe_parallel_cells,
    build_oracle,
    run_scheme,
    run_sweep,
    sweep_table,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


SCALE = 0.25  # keep harness tests fast


class TestRunScheme:
    def test_returns_result_with_blocks(self):
        result = run_scheme("synthetic_imbalance", "rr", scale=SCALE)
        assert result.cycles > 0
        assert result.blocks

    def test_results_are_memoized(self):
        a = run_scheme("synthetic_imbalance", "rr", scale=SCALE)
        b = run_scheme("synthetic_imbalance", "rr", scale=SCALE)
        assert a is b

    def test_cache_respects_scheme(self):
        a = run_scheme("synthetic_imbalance", "rr", scale=SCALE)
        b = run_scheme("synthetic_imbalance", "gto", scale=SCALE)
        assert a is not b

    def test_workload_kwargs_bypass_cache(self):
        a = run_scheme("bfs", "rr", scale=SCALE)
        b = run_scheme("bfs", "rr", scale=SCALE, balanced=True)
        assert a is not b

    def test_accuracy_tracker_attaches(self):
        result = run_scheme("synthetic_imbalance", "cawa", scale=SCALE,
                            with_accuracy=True)
        assert 0.0 <= result.extra["cpl_accuracy"] <= 1.0

    def test_reuse_profiler_attaches(self):
        result = run_scheme("synthetic_memstress", "rr", scale=SCALE,
                            with_reuse=True)
        profiler = result.extra["reuse_profiler"]
        assert profiler.critical.references + profiler.non_critical.references > 0


class TestOracle:
    def test_oracle_covers_all_warps(self):
        oracle = build_oracle("synthetic_imbalance", scale=SCALE)
        result = run_scheme("synthetic_imbalance", "rr", scale=SCALE)
        expected_keys = {
            (block.block_id, warp.warp_id_in_block)
            for block in result.blocks
            for warp in block.warps
        }
        assert set(oracle) == expected_keys
        assert all(t >= 0 for t in oracle.values())

    def test_caws_scheme_uses_oracle(self):
        result = run_scheme("synthetic_imbalance", "caws", scale=SCALE)
        assert result.cycles > 0


class TestSweep:
    def test_sweep_grid_complete(self):
        results = run_sweep(["synthetic_imbalance"], ["rr", "gto"], scale=SCALE)
        assert set(results) == {("synthetic_imbalance", "rr"),
                                ("synthetic_imbalance", "gto")}

    def test_sweep_table_renders(self):
        results = run_sweep(["synthetic_imbalance"], ["rr", "gto"], scale=SCALE)
        text = sweep_table(results, ["synthetic_imbalance"], ["rr", "gto"],
                           lambda r: r.ipc, "workload")
        assert "synthetic_imbalance" in text
        assert "rr" in text and "gto" in text


class TestParallelSweepDedupe:
    """Grid cells resolving to one execution fingerprint run once."""

    def test_duplicate_cells_collapse_to_one_group(self):
        base = GPUConfig.default_sim()
        groups = _dedupe_parallel_cells(
            [("bfs", "rr"), ("bfs", "rr"), ("bfs", "gto")], lambda _w: base
        )
        assert groups == [[("bfs", "rr")], [("bfs", "gto")]]

    def test_distinct_schemes_stay_separate(self):
        base = GPUConfig.default_sim()
        groups = _dedupe_parallel_cells(
            [("bfs", "rr"), ("bfs", "cawa"), ("kmeans", "rr")], lambda _w: base
        )
        assert len(groups) == 3
        assert all(len(g) == 1 for g in groups)

    def test_alias_schemes_share_one_execution(self, monkeypatch):
        # Register a scheme alias that resolves to rr's exact config; the
        # grid must dispatch one simulation and fan it out to both cells.
        from repro.core import cawa

        monkeypatch.setitem(cawa.SCHEMES, "rr_alias", cawa.SCHEMES["rr"])
        base = GPUConfig.default_sim()
        groups = _dedupe_parallel_cells(
            [("bfs", "rr"), ("bfs", "rr_alias")], lambda _w: base
        )
        assert groups == [[("bfs", "rr"), ("bfs", "rr_alias")]]

    def test_parallel_sweep_fans_alias_results_out(self, monkeypatch):
        from repro.core import cawa

        monkeypatch.setitem(cawa.SCHEMES, "rr_alias", cawa.SCHEMES["rr"])
        wl = "synthetic_imbalance"
        results = run_sweep([wl], ["rr", "rr_alias"], scale=SCALE,
                            parallel=True)
        assert results[(wl, "rr")].cycles == results[(wl, "rr_alias")].cycles
        # Both cells got their own disk-cache entries, so later serial
        # calls under either name hit without re-simulating.
        base = GPUConfig.default_sim()
        for scheme in ("rr", "rr_alias"):
            key = result_cache.cache_key(
                wl, scheme, SCALE,
                cawa.apply_scheme(base, scheme).fingerprint(),
            )
            assert result_cache.load(key) is not None

    def test_parallel_sweep_with_duplicate_scheme_list(self):
        wl = "synthetic_imbalance"
        results = run_sweep([wl], ["rr", "rr"], scale=SCALE, parallel=True)
        assert set(results) == {(wl, "rr")}
        assert results[(wl, "rr")].cycles > 0


class TestFigureModules:
    """Smoke tests: every figure module runs at tiny scale and renders."""

    def test_fig01(self):
        from repro.experiments import fig01
        data = fig01.run(scale=SCALE, workloads=["synthetic_imbalance"])
        assert "synthetic_imbalance" in data
        assert "Figure 1" in fig01.render(data)

    def test_fig04(self):
        from repro.experiments import fig04
        data = fig04.run(scale=SCALE, workload="synthetic_imbalance")
        assert set(data) == set(fig04.SCHEDULERS)
        assert "Figure 4" in fig04.render(data)

    def test_fig09_and_summary(self):
        from repro.experiments import fig09
        data = fig09.run(scale=SCALE, workloads=["kmeans"], schemes=["gto"])
        assert ("kmeans", "gto") in data
        summary = fig09.summarize(data)
        assert ("Sens", "gto") in summary

    def test_fig11(self):
        from repro.experiments import fig11
        data = fig11.run(scale=SCALE, workloads=["needle"])
        assert data["needle"] == 1.0

    def test_fig15(self):
        from repro.experiments import fig15
        data = fig15.run(scale=SCALE, workloads=["kmeans"])
        assert ("kmeans", "rr") in data and ("kmeans", "cawa") in data

    def test_fig02(self):
        from repro.experiments import fig02
        data = fig02.run(scale=SCALE)
        assert len(data["a_exec_time"]) >= 2
        assert "Figure 2" in fig02.render(data)

    def test_fig03(self):
        from repro.experiments import fig03
        data = fig03.run(scale=SCALE)
        assert 0.0 <= data["critical_evicted_before_reuse"] <= 1.0
        assert "Figure 3" in fig03.render(data)

    def test_fig10(self):
        from repro.experiments import fig10
        data = fig10.run(scale=SCALE, workloads=["kmeans"])
        assert all(value >= 0 for value in data.values())
        assert "Figure 10" in fig10.render(data)

    def test_fig12(self):
        from repro.experiments import fig12
        data = fig12.run(scale=SCALE)
        assert set(data) == {"rr", "gcaws"}
        assert "Figure 12" in fig12.render(data)

    def test_fig13(self):
        from repro.experiments import fig13
        data = fig13.run(scale=SCALE, workloads=["needle"])
        assert set(s for _, s in data) == set(fig13.SCHEMES)
        assert "Figure 13" in fig13.render(data)

    def test_fig14(self):
        from repro.experiments import fig14
        data = fig14.run(scale=SCALE, workloads=["kmeans"])
        assert all(value > 0 for value in data.values())
        assert "Figure 14" in fig14.render(data)

    def test_fig16_and_17(self):
        from repro.experiments import fig16, fig17
        data = fig17.run(scale=SCALE, workloads=["kmeans"])
        gains = fig17.cacp_gains(data)
        assert set(gains) == {pair[0] for pair in fig16.PAIRINGS}
        assert "Figure 17" in fig17.render(data)
        mpki = fig16.run(scale=SCALE, workloads=["kmeans"])
        assert "Figure 16" in fig16.render(mpki)

    def test_tables(self):
        from repro.experiments import tables
        assert "Table 1" in tables.table1()
        assert "Table 2" in tables.table2()
