"""Runtime CPL-bounds checking (``GPUConfig.check_cpl_bounds``).

With the flag on, every SM's predictor is a
:class:`~repro.analysis.pathlen.CheckedCriticalityPredictor`: each dynamic
Algorithm-2 branch delta must lie inside the static path-length envelope and
the ``nInst`` disparity counter must stay non-negative.  These tests run
real workloads end-to-end under the flag — if CPL accounting ever drifts
from what the CFG allows, they fail with a :class:`CPLBoundsError` instead
of a silently mis-ranked warp.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import GPU, GPUConfig, apply_scheme
from repro.analysis.pathlen import CheckedCriticalityPredictor
from repro.core.cawa import SCHEMES
from repro.core.cpl import CriticalityPredictor
from repro.workloads import make_workload, workload_names

#: Scales matching tests/test_workloads.py (each cell well under ~1s).
FAST_SCALE = {
    "bfs": 0.25,
    "b+tree": 0.25,
    "heartwall": 0.5,
    "kmeans": 0.25,
    "needle": 0.5,
    "srad_1": 0.5,
    "strcltr_small": 0.5,
    "backprop": 0.25,
    "particle": 0.5,
    "pathfinder": 0.25,
    "strcltr_mid": 0.5,
    "tpacf": 0.5,
    "synthetic_imbalance": 1.0,
    "synthetic_divergence": 1.0,
    "synthetic_memstress": 1.0,
}

#: Fast tier-1 grid: divergence-heavy workloads across the scheme space.
FAST_GRID = [
    ("bfs", "cawa"),
    ("kmeans", "gcaws"),
    ("needle", "cawa"),
    ("synthetic_divergence", "gto"),
    ("b+tree", "cawa"),
]


def run_checked(name: str, scheme: str) -> GPU:
    config = replace(
        apply_scheme(GPUConfig.default_sim(), scheme),
        check_cpl_bounds=True,
    )
    gpu = GPU(config)
    wl = make_workload(name, scale=FAST_SCALE[name])
    wl.run(gpu, scheme=scheme, check=True)  # raises CPLBoundsError on drift
    return gpu


@pytest.mark.parametrize("name,scheme", FAST_GRID)
def test_cpl_deltas_stay_in_static_envelope(name, scheme):
    gpu = run_checked(name, scheme)
    predictors = [sm.cpl for sm in gpu.sms]
    assert all(isinstance(p, CheckedCriticalityPredictor) for p in predictors)
    # The run must actually have exercised the checker, including at least
    # one branch whose envelope is finite (a real two-arm region).
    assert sum(p.bound_checks for p in predictors) > 0
    assert sum(p.finite_checks for p in predictors) > 0


def test_flag_off_installs_plain_predictor():
    gpu = GPU(GPUConfig.default_sim())
    for sm in gpu.sms:
        assert type(sm.cpl) is CriticalityPredictor


def test_flag_does_not_change_timing():
    # The checker is observational: cycle counts are bit-identical.
    results = {}
    for flag in (False, True):
        config = replace(
            apply_scheme(GPUConfig.default_sim(), "gcaws"),
            check_cpl_bounds=flag,
        )
        gpu = GPU(config)
        wl = make_workload("kmeans", scale=FAST_SCALE["kmeans"])
        results[flag] = wl.run(gpu, scheme="gcaws", check=True)
    assert results[False].cycles == results[True].cycles
    assert results[False].ipc == results[True].ipc


def test_flag_excluded_from_fingerprint():
    base = GPUConfig.default_sim()
    flagged = replace(base, check_cpl_bounds=True)
    assert base.fingerprint() == flagged.fingerprint()


@pytest.mark.slow
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
@pytest.mark.parametrize("name", workload_names(include_synthetic=True))
def test_full_grid_stays_in_envelope(name, scheme):
    gpu = run_checked(name, scheme)
    assert sum(sm.cpl.bound_checks for sm in gpu.sms) >= 0
