"""Tests for Warp and ThreadBlock runtime state."""

import numpy as np
import pytest

from repro.isa.kernel import KernelBuilder
from repro.isa.instructions import Special
from repro.simt.block import ThreadBlock
from repro.simt.warp import Warp, WarpStatus


def make_block(block_dim=96, block_id=1, grid_dim=4, shared_bytes=0):
    b = KernelBuilder("t", shared_mem_bytes=shared_bytes)
    b.nop()
    kernel = b.build()
    return ThreadBlock(block_id, block_dim, grid_dim, kernel, warp_size=32)


def add_warps(block):
    for w in range(block.num_warps):
        block.warps.append(Warp(w, block, 32, 4, 2, dynamic_id=w))
    return block.warps


class TestWarpCreation:
    def test_partial_last_warp_mask(self):
        block = make_block(block_dim=40)  # 2 warps: 32 + 8 threads
        warps = add_warps(block)
        assert warps[0].initial_mask == (1 << 32) - 1
        assert warps[1].initial_mask == (1 << 8) - 1

    def test_special_values(self):
        block = make_block(block_dim=96, block_id=2)
        warps = add_warps(block)
        w1 = warps[1]
        tid = w1.special_values(Special.TID)
        assert tid[0] == 32 and tid[31] == 63
        gtid = w1.special_values(Special.GTID)
        assert gtid[0] == 2 * 96 + 32
        assert np.all(w1.special_values(Special.CTAID) == 2)
        assert np.all(w1.special_values(Special.WARPID) == 1)

    def test_execution_time(self):
        block = make_block()
        (warp, *_rest) = add_warps(block)
        warp.start_cycle = 100.0
        warp.mark_finished(250.0)
        assert warp.execution_time == 150.0
        assert warp.finished


class TestBarrier:
    def test_barrier_releases_when_all_arrive(self):
        block = make_block(block_dim=96)  # 3 warps
        warps = add_warps(block)
        assert not block.barrier_arrive(warps[0])
        assert not block.barrier_arrive(warps[1])
        assert block.barrier_arrive(warps[2])
        released = block.barrier_release()
        assert len(released) == 3
        assert all(w.status is WarpStatus.RUNNING for w in released)

    def test_finished_warps_dont_block_barrier(self):
        block = make_block(block_dim=96)
        warps = add_warps(block)
        warps[2].mark_finished(10.0)
        assert not block.barrier_arrive(warps[0])
        assert block.barrier_arrive(warps[1])

    def test_pending_release_after_finish(self):
        block = make_block(block_dim=96)
        warps = add_warps(block)
        block.barrier_arrive(warps[0])
        block.barrier_arrive(warps[1])
        warps[2].mark_finished(5.0)
        assert block.barrier_pending_release


class TestBlockLifecycle:
    def test_commit_cycle_set_when_all_finish(self):
        block = make_block(block_dim=64)
        warps = add_warps(block)
        warps[0].mark_finished(10.0)
        assert block.commit_cycle is None
        assert block.live_warps == 1
        warps[1].mark_finished(30.0)
        assert block.commit_cycle == 30.0
        assert block.done

    def test_warp_execution_times(self):
        block = make_block(block_dim=64)
        warps = add_warps(block)
        block.dispatch_cycle = 0.0
        warps[0].mark_finished(10.0)
        warps[1].mark_finished(50.0)
        assert block.warp_execution_times() == [10.0, 50.0]

    def test_shared_memory_roundtrip(self):
        block = make_block(shared_bytes=256)
        addrs = np.zeros(32, dtype=np.int64)
        addrs[:4] = np.arange(4) * 8
        mask = np.zeros(32, dtype=bool)
        mask[:4] = True
        block.shared_store(addrs, np.arange(32, dtype=float), mask)
        values = block.shared_load(addrs, mask)
        assert np.array_equal(values[:4], np.arange(4, dtype=float))
        assert np.all(values[4:] == 0.0)
