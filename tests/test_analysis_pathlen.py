"""Tests for the static path-length bounds (``repro.analysis.pathlen``)."""

from __future__ import annotations

import math

import pytest

from repro.analysis import PathBounds, compute_path_bounds
from repro.analysis.pathlen import CheckedCriticalityPredictor
from repro.errors import CPLBoundsError
from repro.isa.instructions import CmpOp, Special
from repro.isa.kernel import KernelBuilder


def build_if_else():
    """pc2 branch: fall arm = pcs 3-5 (incl. bra end), taken arm = pcs 6-8."""
    b = KernelBuilder("ifelse")
    i = b.sreg(Special.TID)
    p = b.pred()
    b.setp(p, CmpOp.LT, i, 16.0)
    f = b.begin_if(p)
    b.nop(2)
    b.begin_else(f)
    b.nop(3)
    b.end_if(f)
    return b.build()


def build_loop():
    b = KernelBuilder("loop")
    p = b.pred()
    j = b.const(0.0)
    with b.loop() as lp:
        b.setp(p, CmpOp.GE, j, 3.0)
        lp.break_if(p)
        b.add(j, j, 1.0)
    return b.build()


class TestExitBounds:
    def test_straight_line(self):
        b = KernelBuilder("line")
        b.nop(2)
        bounds = PathBounds(b.build())  # nop nop exit
        assert bounds.min_to_exit[0] == 3.0
        assert bounds.max_to_exit[0] == 3.0
        assert bounds.min_to_exit[2] == 1.0

    def test_if_else_min_max_differ_at_entry(self):
        k = build_if_else()
        bounds = compute_path_bounds(k)
        # Both arms have the same static length here, so compare at the
        # branch: min = shortest arm, max = longest simple path.
        site = [i for i in k.instructions if i.op.value == "bra" and i.pred is not None][0]
        assert bounds.min_to_exit[site.pc] <= bounds.max_to_exit[site.pc]
        assert not math.isinf(bounds.max_to_exit[0])

    def test_loop_makes_max_unbounded(self):
        bounds = compute_path_bounds(build_loop())
        assert math.isinf(bounds.max_to_exit[0])
        assert not math.isinf(bounds.min_to_exit[0])


class TestRegionBounds:
    def test_entry_equals_stop(self):
        bounds = compute_path_bounds(build_if_else())
        assert bounds.region_bounds(3, 3) == (0.0, 0.0)

    def test_if_else_arms(self):
        k = build_if_else()
        bounds = compute_path_bounds(k)
        site = [
            i
            for i in k.instructions
            if i.op.value == "bra" and i.pred is not None
        ][0]
        fall = bounds.region_bounds(site.pc + 1, site.reconv_pc)
        taken = bounds.region_bounds(site.target_pc, site.reconv_pc)
        # The arms match Algorithm 2's static estimates exactly.
        assert fall == (
            float(site.target_pc - site.pc - 1),
            float(site.target_pc - site.pc - 1),
        )
        assert taken == (
            float(site.reconv_pc - site.target_pc),
            float(site.reconv_pc - site.target_pc),
        )

    def test_unreachable_stop_is_none(self):
        k = build_if_else()
        bounds = compute_path_bounds(k)
        # From the reconvergence point backwards into the then-arm: never.
        site = [
            i
            for i in k.instructions
            if i.op.value == "bra" and i.pred is not None
        ][0]
        assert bounds.region_bounds(site.reconv_pc, site.pc + 1) is None

    def test_loop_body_region_is_unbounded(self):
        k = build_loop()
        bounds = compute_path_bounds(k)
        site = [
            i
            for i in k.instructions
            if i.op.value == "bra" and i.pred is not None
        ][0]
        # From just after the break back around the loop to the exit
        # reconvergence: the region contains the back edge => inf max.
        lo, hi = bounds.region_bounds(site.pc + 1, site.reconv_pc)
        assert math.isinf(hi)
        assert lo >= 1.0

    def test_region_cache_returns_same_object(self):
        bounds = compute_path_bounds(build_if_else())
        a = bounds.region_bounds(3, 9)
        assert bounds.region_bounds(3, 9) is a


class TestBranchEnvelope:
    def _site(self, kernel):
        return [
            i
            for i in kernel.instructions
            if i.op.value == "bra" and i.pred is not None
        ][0]

    def test_divergent_sums_both_arms(self):
        k = build_if_else()
        bounds = compute_path_bounds(k)
        s = self._site(k)
        fall = bounds.region_bounds(s.pc + 1, s.reconv_pc)
        taken = bounds.region_bounds(s.target_pc, s.reconv_pc)
        env = bounds.branch_envelope(
            s.pc, s.target_pc, s.reconv_pc, diverged=True, all_taken=False
        )
        assert env == (fall[0] + taken[0], fall[1] + taken[1])

    def test_uniform_outcomes_pick_one_arm(self):
        k = build_if_else()
        bounds = compute_path_bounds(k)
        s = self._site(k)
        taken_env = bounds.branch_envelope(
            s.pc, s.target_pc, s.reconv_pc, diverged=False, all_taken=True
        )
        fall_env = bounds.branch_envelope(
            s.pc, s.target_pc, s.reconv_pc, diverged=False, all_taken=False
        )
        assert taken_env == bounds.region_bounds(s.target_pc, s.reconv_pc)
        assert fall_env == bounds.region_bounds(s.pc + 1, s.reconv_pc)

    def test_loop_break_fall_arm_degrades_to_nonnegative(self):
        k = build_loop()
        bounds = compute_path_bounds(k)
        s = self._site(k)
        env = bounds.branch_envelope(
            s.pc, s.target_pc, s.reconv_pc, diverged=False, all_taken=False
        )
        assert env == (0.0, math.inf)

    def test_empty_taken_arm(self):
        k = build_loop()
        bounds = compute_path_bounds(k)
        s = self._site(k)  # loop break: target == reconv, empty taken arm
        env = bounds.branch_envelope(
            s.pc, s.target_pc, s.reconv_pc, diverged=False, all_taken=True
        )
        assert env == (0.0, 0.0)


class _FakeBlock:
    def __init__(self, kernel):
        self.kernel = kernel
        self.block_id = 0
        self.warps = []


class _FakeWarp:
    """Just enough surface for the predictor's counter bookkeeping."""

    def __init__(self, kernel):
        self.block = _FakeBlock(kernel)
        self.cpl_inst_disparity = 0
        self.cpl_stall = 0.0
        self.criticality = 0.0
        self.issued_instructions = 0
        self.last_issue_cycle = 0.0
        self.start_cycle = 0.0
        self.finished = False
        self.is_critical_flag = False
        self.dynamic_id = 7


class TestCheckedCriticalityPredictor:
    def test_in_envelope_branch_passes(self):
        k = build_if_else()
        warp = _FakeWarp(k)
        site = [
            i
            for i in k.instructions
            if i.op.value == "bra" and i.pred is not None
        ][0]
        predictor = CheckedCriticalityPredictor()
        predictor.on_branch(warp, site, diverged=True, all_taken=False)
        assert predictor.bound_checks == 1
        assert predictor.finite_checks == 1
        assert warp.cpl_inst_disparity > 0

    def test_negative_disparity_raises_on_issue(self):
        k = build_if_else()
        warp = _FakeWarp(k)
        warp.cpl_inst_disparity = -1  # corrupted by hand
        predictor = CheckedCriticalityPredictor()
        with pytest.raises(CPLBoundsError):
            predictor.on_issue(warp, stall_cycles=0.0)

    def test_envelope_violation_raises(self):
        # Tamper with the branch PCs so Algorithm 2's estimate (computed
        # from the instruction) disagrees with the CFG envelope.
        from dataclasses import replace

        k = build_if_else()
        warp = _FakeWarp(k)
        site = [
            i
            for i in k.instructions
            if i.op.value == "bra" and i.pred is not None
        ][0]
        # Lie about the target: the claimed fall-through arm shrinks to 0
        # instructions while the real region still needs several.
        lying = replace(site, target_pc=site.pc + 1)
        predictor = CheckedCriticalityPredictor()
        with pytest.raises(CPLBoundsError):
            predictor.on_branch(warp, lying, diverged=False, all_taken=False)

    def test_bounds_cache_reuses_per_kernel(self):
        k = build_if_else()
        warp = _FakeWarp(k)
        predictor = CheckedCriticalityPredictor()
        b1 = predictor._bounds_for(warp)
        b2 = predictor._bounds_for(warp)
        assert b1 is b2
