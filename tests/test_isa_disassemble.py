"""Golden tests for ``Kernel.disassemble`` / ``format_instruction``.

The disassembly is the substrate of lint findings (``source_line``) and of
debugging sessions, so the rendering is pinned exactly: guard predicates
with negation, SETP comparison operators, LD/ST memory spaces and offsets,
and branch targets with their reconvergence labels.
"""

from __future__ import annotations

from repro.isa.instructions import CmpOp, MemSpace, Special
from repro.isa.kernel import KernelBuilder


def build_golden_kernel():
    b = KernelBuilder("golden", shared_mem_bytes=64)
    i = b.sreg(Special.TID)
    p = b.pred()
    b.setp(p, CmpOp.LT, i, 4.0)
    with b.if_then(p):
        x = b.ld(i, offset=8, space=MemSpace.SHARED)
        b.st(i, x, offset=-8)
    return b.build()


GOLDEN = """\
    0:  sreg r0, tid
    1:  setp.lt p0, r0, #4
    2:  @!p0 bra else_1, reconv=else_1
    3:  ld.shared r1, [r0 + 8]
    4:  st [r0 - 8], r1
else_1:
endif_2:
    5:  reconv
    6:  exit"""

GOLDEN_LOOP = """\
    0:  mov r0, #0
loop_1:
    1:  setp.ge p0, r0, #3
    2:  @p0 bra endloop_2, reconv=endloop_2
    3:  add r0, r0, #1
    4:  bra loop_1
endloop_2:
    5:  reconv
    6:  exit"""


class TestDisassembleGolden:
    def test_if_then_kernel(self):
        assert build_golden_kernel().disassemble() == GOLDEN

    def test_loop_kernel(self):
        b = KernelBuilder("looped")
        p = b.pred()
        j = b.const(0.0)
        with b.loop() as lp:
            b.setp(p, CmpOp.GE, j, 3.0)
            lp.break_if(p)
            b.add(j, j, 1.0)
        assert b.build().disassemble() == GOLDEN_LOOP

    def test_round_trips_negated_guard(self):
        # The old rendering dropped pred_neg entirely; pin it.
        text = build_golden_kernel().disassemble()
        assert "@!p0 bra" in text

    def test_round_trips_memory_space(self):
        text = build_golden_kernel().disassemble()
        assert "ld.shared r1, [r0 + 8]" in text
        # Global accesses carry no suffix.
        assert "st [r0 - 8], r1" in text

    def test_round_trips_reconvergence_label(self):
        text = build_golden_kernel().disassemble()
        assert "reconv=else_1" in text


class TestFormatInstruction:
    def test_setp_selp_mad_and_guards(self):
        b = KernelBuilder("ops")
        p = b.pred()
        a, c, d = b.reg(), b.reg(), b.reg()
        b.setp(p, CmpOp.EQ, a, 0.0)
        b.selp(d, p, a, 2.5)
        b.mad(d, a, 3.0, c)
        b.mul(d, a, c, pred=p, pred_neg=False)
        k = b.build()
        assert k.source_line(0) == "[0] setp.eq p0, r0, #0"
        # SELP's predicate is a data operand, not a guard: trailing pN.
        assert k.source_line(1) == "[1] selp r2, r0, #2.5, p0"
        assert k.source_line(2) == "[2] mad r2, r0, r1, #3"
        assert k.source_line(3) == "[3] @p0 mul r2, r0, r1"
        assert k.source_line(4) == "[4] exit"

    def test_source_line_matches_disassembly_text(self):
        k = build_golden_kernel()
        assert k.source_line(2) == "[2] @!p0 bra else_1, reconv=else_1"
        for pc in range(len(k)):
            line = k.source_line(pc)
            assert line.startswith(f"[{pc}] ")
            assert line[len(f"[{pc}] ") :] in k.disassemble()
