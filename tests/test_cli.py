"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope"])

    def test_run_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workload", "bfs", "--scheme", "fifo"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "bfs"])
        assert args.scheme == "rr"
        assert args.scale == 1.0
        assert not args.fermi


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out and "cawa" in out and "Non-sens" in out

    def test_run_synthetic(self, capsys):
        code = main([
            "run", "--workload", "synthetic_divergence", "--scheme", "gto",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "synthetic_divergence" in out
        assert "IPC" in out

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--workloads", "synthetic_imbalance",
            "--schemes", "rr,gto", "--metric", "cycles", "--scale", "0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "synthetic_imbalance" in out

    def test_sweep_with_speedup_table(self, capsys):
        code = main([
            "sweep", "--workloads", "synthetic_imbalance",
            "--schemes", "rr,gto", "--metric", "ipc", "--scale", "0.5",
        ])
        assert code == 0
        assert "Speedup over rr" in capsys.readouterr().out

    def test_figure_unknown_number(self, capsys):
        assert main(["figure", "5"]) == 2

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out


class TestLintCommand:
    def test_requires_workload_or_all(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint"])

    def test_workload_and_all_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--workload", "bfs", "--all"])

    def test_lint_single_workload(self, capsys):
        assert main(["lint", "--workload", "synthetic_divergence"]) == 0
        out = capsys.readouterr().out
        assert "synthetic_divergence" in out
        assert "clean" in out

    def test_lint_waived_workload_stays_green(self, capsys):
        # tpacf carries a MEM001 waiver (intended AoS stride): the waived
        # finding is shown but the exit code stays 0.
        assert main(["lint", "--workload", "tpacf", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "(waived)" in out
        assert "MEM001" in out

    def test_lint_json_format(self, capsys):
        import json

        code = main([
            "lint", "--workload", "synthetic_imbalance", "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        assert payload[0]["kernel"]
        assert payload[0]["ok"] is True
