"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope"])

    def test_run_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workload", "bfs", "--scheme", "fifo"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "bfs"])
        assert args.scheme == "rr"
        assert args.scale == 1.0
        assert not args.fermi


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out and "cawa" in out and "Non-sens" in out

    def test_run_synthetic(self, capsys):
        code = main([
            "run", "--workload", "synthetic_divergence", "--scheme", "gto",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "synthetic_divergence" in out
        assert "IPC" in out

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--workloads", "synthetic_imbalance",
            "--schemes", "rr,gto", "--metric", "cycles", "--scale", "0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "synthetic_imbalance" in out

    def test_sweep_with_speedup_table(self, capsys):
        code = main([
            "sweep", "--workloads", "synthetic_imbalance",
            "--schemes", "rr,gto", "--metric", "ipc", "--scale", "0.5",
        ])
        assert code == 0
        assert "Speedup over rr" in capsys.readouterr().out

    def test_figure_unknown_number(self, capsys):
        assert main(["figure", "5"]) == 2

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out


class TestLintCommand:
    def test_requires_workload_or_all(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint"])

    def test_workload_and_all_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--workload", "bfs", "--all"])

    def test_lint_single_workload(self, capsys):
        assert main(["lint", "--workload", "synthetic_divergence"]) == 0
        out = capsys.readouterr().out
        assert "synthetic_divergence" in out
        assert "clean" in out

    def test_lint_waived_workload_stays_green(self, capsys):
        # tpacf carries a MEM001 waiver (intended AoS stride): the waived
        # finding is shown but the exit code stays 0.
        assert main(["lint", "--workload", "tpacf", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "(waived)" in out
        assert "MEM001" in out

    def test_lint_json_format(self, capsys):
        import json

        code = main([
            "lint", "--workload", "synthetic_imbalance", "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        assert payload[0]["kernel"]
        assert payload[0]["ok"] is True


class TestEventsCommand:
    """`repro events` subcommands (see docs/observability.md)."""

    def test_schema_table(self, capsys):
        assert main(["events", "schema"]) == 0
        out = capsys.readouterr().out
        assert "WARP_ISSUE" in out and "CACHE_MISS" in out
        assert "kind, cycle, sm" in out

    def test_schema_check(self, capsys):
        assert main(["events", "schema", "--check"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_record_and_stats(self, capsys):
        code = main([
            "events", "record", "synthetic_imbalance", "rr", "--scale", "0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recorded" in out and "WARP_ISSUE" in out

        # stats reuses the stored stream (same cache dir within this test).
        assert main([
            "events", "stats", "synthetic_imbalance", "rr", "--scale", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "bucket" in out and "critical warp" in out

    def test_stats_json(self, capsys):
        import json

        code = main([
            "events", "stats", "synthetic_imbalance", "rr", "--scale", "0.5",
            "--format", "json", "--no-store",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["issue_cycles"] > 0
        assert payload["kind_counts"]["WARP_ISSUE"] > 0
        assert len(payload["top_reasons"]) <= 3

    def test_export_chrome(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        code = main([
            "events", "export", "--format", "chrome",
            "synthetic_imbalance", "rr", "--scale", "0.5",
            "-o", str(out_path), "--no-store",
        ])
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        kinds = {e.get("ph") for e in doc["traceEvents"]}
        assert "X" in kinds and "M" in kinds

    def test_export_csv_to_stdout(self, capsys):
        code = main([
            "events", "export", "--format", "csv",
            "synthetic_imbalance", "rr", "--scale", "0.5", "--no-store",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("kind,cycle,sm")

    def test_info_empty(self, capsys):
        assert main(["events", "info"]) == 0
        assert "no event recordings" in capsys.readouterr().out
