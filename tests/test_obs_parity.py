"""Observability must never perturb timing — the subsystem's hard contract.

One grid, every mode: {rr, gto, caws, cawa} x {execute, trace} x
{cycle, skip}, with the event bus on (plus live collectors) and off.
Cycles, instruction counts, and cache counters must be bit-identical, and
the *event stream itself* must be identical across frontends and clocks
(sorted canonically) — recording is part of the bit-identity contract,
not an exception to it.

Also pins the stall-accounting identity on a real run (accounted
warp-cycles == warp lifetime), the cache-bypass rule for recording runs,
and the event-bus-fed TimelineProfiler against the deprecated direct hook.
"""

import warnings

import pytest

from repro.config import GPUConfig
from repro.experiments import runner
from repro.obs import StallAccounting, record_events, sort_events
from repro.stats.timeline import TimelineProfiler

WORKLOAD = "bfs"
SCALE = 0.25
SCHEMES = ("rr", "gto", "caws", "cawa")


def run_off(scheme, config=None):
    return runner.run_scheme(
        WORKLOAD, scheme, scale=SCALE, config=config,
        use_cache=False, persistent=False,
    )


def assert_same_timing(a, b, what):
    assert a.cycles == b.cycles, what
    assert a.thread_instructions == b.thread_instructions, what
    assert a.warp_instructions == b.warp_instructions, what
    assert a.l1_stats.misses == b.l1_stats.misses, what
    assert a.l1_stats.hits == b.l1_stats.hits, what
    assert a.l2_stats.misses == b.l2_stats.misses, what
    assert a.dram_accesses == b.dram_accesses, what


@pytest.mark.parametrize("scheme", SCHEMES)
def test_parity_grid(scheme):
    """events-on runs (all frontends/clocks, collectors attached) ==
    events-off baseline; event streams identical across modes."""
    baseline = run_off(scheme)
    assert baseline.events == "off"

    streams = {}
    for frontend in ("execute", "trace"):
        for clock in ("cycle", "skip"):
            cfg = GPUConfig.default_sim().with_clock(clock)
            if frontend == "trace":
                cfg = cfg.with_frontend("trace")
            collectors = (StallAccounting(), TimelineProfiler())
            result, bus = record_events(
                WORKLOAD, scheme, scale=SCALE, config=cfg,
                collectors=collectors,
            )
            what = f"{scheme}/{frontend}/{clock}"
            assert_same_timing(result, baseline, what)
            assert result.extra["events_recorded"] == bus.emitted > 0, what
            # Collectors saw the full stream.
            acct, profiler = collectors
            assert acct.issue_cycles() == result.warp_instructions, what
            assert len(profiler.timelines) > 0, what
            streams[(frontend, clock)] = sort_events(bus.events())

    # The event stream is part of the bit-identity contract: identical
    # across frontends and clocks once canonically sorted.
    reference = streams[("execute", "cycle")]
    for mode, stream in streams.items():
        assert stream == reference, f"{scheme}/{mode} event stream diverged"


def test_stall_accounting_identity_on_real_run():
    """issue + stall buckets == warp lifetime + 1 (inclusive), per warp."""
    result, bus = record_events(WORKLOAD, "cawa", scale=SCALE)
    acct = StallAccounting().extend(bus.events())
    per_warp = acct.per_warp()
    blocks = {b.block_id: b for b in result.blocks}
    assert per_warp
    for (sm, block_id, warp_id), row in per_warp.items():
        warp = next(w for w in blocks[block_id].warps
                    if w.warp_id_in_block == warp_id)
        accounted = sum(row.values())
        # Lifetime is finish - start; the accounting covers the inclusive
        # [start, finish] cycle range, hence the +1.
        assert accounted == warp.execution_time + 1, (sm, block_id, warp_id)
    # Finish events recorded for every accounted warp.
    assert set(acct.finishes) == set(per_warp)


def test_recording_runs_bypass_result_caches():
    """events != off is fingerprint-excluded, so it must never be cached."""
    runner.clear_cache()
    cfg = GPUConfig.default_sim().with_events("on")
    result = runner.run_scheme(WORKLOAD, "rr", scale=SCALE, config=cfg)
    assert result.events == "on"
    assert result.extra["events_recorded"] > 0
    assert runner._CACHE == {}
    # The same cell with events off is cacheable again.
    off = runner.run_scheme(WORKLOAD, "rr", scale=SCALE)
    assert off.events == "off"
    assert runner._CACHE


def test_timeline_profiler_bus_matches_deprecated_hook():
    """Event-bus-fed timelines == direct-hook timelines (and the hook warns)."""
    from repro import GPU
    from repro.workloads import make_workload

    # Deprecated path.
    gpu = GPU(GPUConfig.default_sim(num_sms=1))
    legacy = TimelineProfiler()
    for sm in gpu.sms:
        sm.issue_observers.append(legacy)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        make_workload("synthetic_imbalance").run(gpu)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)

    # Bus path.
    from repro.obs import bus_from_spec

    bus = bus_from_spec("on")
    modern = TimelineProfiler()
    bus.attach(modern)
    gpu2 = GPU(GPUConfig.default_sim(num_sms=1), obs=bus)
    make_workload("synthetic_imbalance").run(gpu2)

    assert set(modern.timelines) == set(legacy.timelines)
    for key, timeline in legacy.timelines.items():
        assert modern.timelines[key].issue_cycles == timeline.issue_cycles
        assert modern.timelines[key].finish_cycle == timeline.finish_cycle


def test_auto_bus_from_config_spec():
    """GPU builds its own bus when config.events != 'off' and none is given."""
    from repro import GPU

    gpu = GPU(GPUConfig.default_sim().with_events("ring:256"))
    assert gpu.obs is not None and gpu.obs.ring.capacity == 256
    gpu_off = GPU(GPUConfig.default_sim())
    assert gpu_off.obs is None
    for sm in gpu_off.sms:
        assert sm.obs is None and sm.l1d.obs is None
