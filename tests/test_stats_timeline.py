"""Tests for the warp timeline profiler."""

import numpy as np

from repro import GPU, GPUConfig
from repro.stats.timeline import (
    TimelineProfiler,
    critical_tail_cycles,
    render_block_timeline,
)
from repro.workloads import make_workload


def profile(workload="synthetic_imbalance", **kwargs):
    gpu = GPU(GPUConfig.default_sim(num_sms=1))
    profiler = TimelineProfiler()
    for sm in gpu.sms:
        sm.issue_observers.append(profiler)
    make_workload(workload, **kwargs).run(gpu)
    return profiler


class TestProfiler:
    def test_records_every_warp(self):
        profiler = profile()
        sm_id, block_id = profiler.block_keys()[0]
        warps = profiler.block_timelines(sm_id, block_id)
        assert len(warps) == 8  # 256-thread blocks = 8 warps

    def test_issue_cycles_monotonic_per_warp(self):
        profiler = profile()
        for timeline in profiler.timelines.values():
            cycles = timeline.issue_cycles
            assert cycles == sorted(cycles)
            assert timeline.finish_cycle is not None
            assert timeline.finish_cycle == cycles[-1]

    def test_block_keys_cover_all_blocks(self):
        profiler = profile()
        assert len(profiler.block_keys()) == 2  # 512 threads / 256 per block


class TestRendering:
    def test_render_contains_all_warps(self):
        profiler = profile()
        sm_id, block_id = profiler.block_keys()[0]
        text = render_block_timeline(profiler, sm_id, block_id)
        for warp_id in range(8):
            assert f"w{warp_id}" in text
        assert "done @" in text

    def test_render_empty_block(self):
        profiler = TimelineProfiler()
        assert "no issue samples" in render_block_timeline(profiler, 0, 0)

    def test_strip_width_respected(self):
        profiler = profile()
        sm_id, block_id = profiler.block_keys()[0]
        text = render_block_timeline(profiler, sm_id, block_id, width=40)
        for line in text.splitlines()[1:]:
            first, last = line.index("|"), line.rindex("|")
            assert last - first - 1 == 40


class TestCriticalTail:
    def test_imbalanced_block_has_tail(self):
        profiler = profile()
        sm_id, block_id = profiler.block_keys()[0]
        assert critical_tail_cycles(profiler, sm_id, block_id) > 0

    def test_empty_block_has_no_tail(self):
        profiler = TimelineProfiler()
        assert critical_tail_cycles(profiler, 0, 0) == 0.0
