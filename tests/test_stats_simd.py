"""Tests for the SIMD-efficiency metric."""

from repro import GPU, GPUConfig
from repro.memory.cache import CacheStats
from repro.stats.counters import RunResult
from repro.workloads import make_workload


def test_simd_efficiency_formula():
    r = RunResult("k", "rr", cycles=10, thread_instructions=320,
                  warp_instructions=20, l1_stats=CacheStats(),
                  l2_stats=CacheStats(), warp_size=32)
    assert r.simd_efficiency == 0.5


def test_uniform_workload_near_full_efficiency():
    gpu = GPU(GPUConfig.default_sim())
    result = make_workload("backprop", scale=0.25).run(gpu)
    assert result.simd_efficiency > 0.9


def test_divergent_workload_loses_efficiency():
    gpu = GPU(GPUConfig.default_sim())
    divergent = make_workload("synthetic_divergence").run(gpu)
    gpu2 = GPU(GPUConfig.default_sim())
    uniform = make_workload("backprop", scale=0.25).run(gpu2)
    assert divergent.simd_efficiency < uniform.simd_efficiency


def test_zero_instructions_safe():
    r = RunResult("k", "rr", 0, 0, 0, CacheStats(), CacheStats())
    assert r.simd_efficiency == 0.0
