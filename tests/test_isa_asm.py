"""Tests for the assembly format: parse, format, and round-trip."""

import numpy as np
import pytest

from repro import GPU, GPUConfig, KernelBuilder
from repro.errors import KernelBuildError
from repro.isa.asm import format_kernel, parse_kernel
from repro.isa.instructions import CmpOp, Opcode, Special


SAXPY_ASM = """
; y[i] = x[i] * 2 + y[i] for i < 1024
.kernel saxpy
.regs 6
.preds 1
    sreg r0, gtid
    setp.lt p0, r0, #1024
@!p0 bra end, reconv=end
    mul r1, r0, #8
    ld r2, [r1 + 0]
    ld r3, [r1 + 8192]
    mad r4, r2, r3, #2
    st [r1 + 8192], r4
end:
    reconv
    exit
"""


class TestParse:
    def test_parses_directives(self):
        kernel = parse_kernel(SAXPY_ASM)
        assert kernel.name == "saxpy"
        assert kernel.num_regs == 6
        assert kernel.num_preds == 1

    def test_parses_guards_and_branches(self):
        kernel = parse_kernel(SAXPY_ASM)
        branch = next(i for i in kernel.instructions if i.op is Opcode.BRA)
        assert branch.pred == 0 and branch.pred_neg
        assert kernel.instructions[branch.reconv_pc].op is Opcode.RECONV
        assert branch.target_pc == kernel.labels["end"]

    def test_parses_memory_offsets(self):
        kernel = parse_kernel(SAXPY_ASM)
        loads = [i for i in kernel.instructions if i.op is Opcode.LD]
        assert loads[0].imm == 0.0
        assert loads[1].imm == 8192.0

    def test_infers_reg_counts_when_missing(self):
        text = ".kernel t\n    mov r5, #1\n    exit\n"
        kernel = parse_kernel(text)
        assert kernel.num_regs == 6

    def test_comments_and_blanks_ignored(self):
        text = "; hi\n.kernel t\n\n    nop ; trailing\n    exit\n"
        kernel = parse_kernel(text)
        assert [i.op for i in kernel.instructions] == [Opcode.NOP, Opcode.EXIT]

    def test_rejects_unknown_mnemonic(self):
        with pytest.raises(KernelBuildError):
            parse_kernel(".kernel t\n    frobnicate r0\n    exit\n")

    def test_rejects_undefined_label(self):
        with pytest.raises(KernelBuildError):
            parse_kernel(".kernel t\n    bra nowhere\n    exit\n")

    def test_rejects_duplicate_label(self):
        with pytest.raises(KernelBuildError):
            parse_kernel(".kernel t\nx:\nx:\n    exit\n")

    def test_shared_space_suffix(self):
        text = (
            ".kernel t\n    ld.shared r1, [r0 + 0]\n"
            "    st.shared [r0 + 8], r1\n    exit\n"
        )
        kernel = parse_kernel(text)
        from repro.isa.instructions import MemSpace

        assert kernel.instructions[0].space is MemSpace.SHARED
        assert kernel.instructions[1].space is MemSpace.SHARED


class TestRoundTrip:
    def _builder_kernel(self):
        b = KernelBuilder("roundtrip")
        tid = b.sreg(Special.GTID)
        p = b.pred()
        b.setp(p, CmpOp.LT, tid, 64.0)
        with b.if_then(p):
            x = b.ld(b.addr(tid, base=0, scale=8))
            acc = b.const(0.0)
            j = b.const(0.0)
            done = b.pred()
            with b.loop() as lp:
                b.setp(done, CmpOp.GE, j, 4.0)
                lp.break_if(done)
                b.mad(acc, x, 2.0, acc)
                b.add(j, j, 1.0)
            b.selp(acc, p, acc, x)
            b.st(b.addr(tid, base=2048, scale=8), acc)
        return b.build()

    def test_format_parse_preserves_instructions(self):
        original = self._builder_kernel()
        text = format_kernel(original)
        parsed = parse_kernel(text)
        assert len(parsed) == len(original)
        for a, b in zip(original.instructions, parsed.instructions):
            assert a.op is b.op, (a, b)
            assert a.dst == b.dst
            assert a.srcs == b.srcs
            assert (a.imm or 0) == (b.imm or 0)
            assert a.pred == b.pred and a.pred_neg == b.pred_neg
            assert a.target_pc == b.target_pc
            assert a.reconv_pc == b.reconv_pc
            assert a.cmp is b.cmp
            assert a.special is b.special
            assert a.space is b.space

    def test_roundtrip_executes_identically(self):
        n = 64
        gpu_a = GPU(GPUConfig.default_sim(num_sms=1))
        gpu_b = GPU(GPUConfig.default_sim(num_sms=1))
        data = np.arange(n, dtype=float)
        for gpu in (gpu_a, gpu_b):
            gpu.memory.alloc_array(data)           # base 0: input
            gpu.memory.alloc_array(np.zeros(192))  # padding to 2048
            gpu.memory.alloc_array(np.zeros(n))    # base 2048: output
        original = self._builder_kernel()
        reparsed = parse_kernel(format_kernel(original))
        ra = gpu_a.launch(original, 1, n)
        rb = gpu_b.launch(reparsed, 1, n)
        out_a = gpu_a.memory.read_array(2048, n)
        out_b = gpu_b.memory.read_array(2048, n)
        assert np.array_equal(out_a, out_b)
        assert ra.cycles == rb.cycles

    def test_parsed_asm_runs_on_gpu(self):
        gpu = GPU(GPUConfig.default_sim(num_sms=1))
        xs = gpu.memory.alloc_array(np.arange(1024.0))
        ys = gpu.memory.alloc_array(np.ones(1024))
        kernel = parse_kernel(SAXPY_ASM)
        gpu.launch(kernel, 4, 256)
        out = gpu.memory.read_array(ys, 1024)
        # mad r4, r2, r3, #2 encodes x * 2 + y (imm is the multiplier).
        assert np.array_equal(out, np.arange(1024.0) * 2 + 1)
