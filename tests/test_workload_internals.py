"""Deeper per-workload tests: input generators and criticality structure."""

import numpy as np
import pytest

from repro import GPU, GPUConfig
from repro.workloads import make_workload
from repro.workloads.bfs import BFSWorkload
from repro.workloads.btree import BTreeWorkload
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.needle import NeedleWorkload
from repro.workloads.streamcluster import StreamclusterWorkload


class TestBFSGraph:
    def test_csr_structure_valid(self):
        wl = BFSWorkload(num_nodes=256)
        row_ptr, col_idx = wl._make_graph()
        assert len(row_ptr) == 257
        assert row_ptr[0] == 0
        assert np.all(np.diff(row_ptr) >= 1)  # every node has >= 1 edge
        assert row_ptr[-1] == len(col_idx)
        assert col_idx.min() >= 0 and col_idx.max() < 256

    def test_balanced_graph_has_constant_degree(self):
        wl = BFSWorkload(num_nodes=256, balanced=True, avg_degree=8)
        row_ptr, _ = wl._make_graph()
        degrees = np.diff(row_ptr)
        assert np.all(degrees == 8)

    def test_unbalanced_graph_has_degree_spread(self):
        wl = BFSWorkload(num_nodes=512, balanced=False, avg_degree=8)
        row_ptr, _ = wl._make_graph()
        degrees = np.diff(row_ptr)
        assert degrees.max() > 2 * degrees.min()

    def test_unbalanced_mean_degree_near_target(self):
        wl = BFSWorkload(num_nodes=2048, avg_degree=8)
        row_ptr, _ = wl._make_graph()
        assert 2 <= np.diff(row_ptr).mean() <= 16


class TestBTree:
    def test_tree_levels_sized_by_fanout(self):
        wl = BTreeWorkload(fanout=4, depth=3, num_queries=64)
        levels = wl._make_tree()
        assert [len(level) for level in levels] == [4, 16, 64]

    def test_separators_are_sorted(self):
        wl = BTreeWorkload(fanout=8, depth=3, num_queries=64)
        for level in wl._make_tree():
            nodes = level.reshape(-1, 8)
            assert np.all(np.diff(nodes, axis=1) > 0)

    def test_lookup_finds_correct_leaf_range(self):
        # End-to-end: each returned leaf index must contain the query key.
        wl = BTreeWorkload(fanout=4, depth=3, num_queries=128, block_dim=64)
        gpu = GPU(GPUConfig.default_sim())
        spec = wl.build(gpu)
        gpu.launch(spec.kernel, spec.grid_dim, spec.block_dim)
        assert spec.verify(gpu)


class TestKMeans:
    def test_membership_is_valid_cluster_index(self):
        wl = KMeansWorkload(num_points=256, block_dim=64)
        gpu = GPU(GPUConfig.default_sim())
        spec = wl.build(gpu)
        gpu.launch(spec.kernel, spec.grid_dim, spec.block_dim)
        member = gpu.memory.read_array(spec.buffers["membership"], 256)
        assert member.min() >= 0
        assert member.max() < wl.num_clusters

    def test_feature_major_layout_coalesces(self):
        # Adjacent threads read adjacent addresses within each feature row.
        wl = KMeansWorkload(num_points=256)
        gpu = GPU(GPUConfig.default_sim())
        wl.build(gpu)
        result = make_workload("kmeans", num_points=256, block_dim=64).run(
            GPU(GPUConfig.default_sim())
        )
        per_access_lines = result.l1_stats.accesses / max(1, result.warp_instructions)
        assert per_access_lines < 2.0  # far from the 32-lines-per-access worst case


class TestNeedle:
    def test_single_warp_blocks(self):
        wl = NeedleWorkload(num_tiles=2)
        gpu = GPU(GPUConfig.default_sim())
        spec = wl.build(gpu)
        assert spec.block_dim == 32  # one warp per block (paper's footnote)
        result = gpu.launch(spec.kernel, spec.grid_dim, spec.block_dim)
        assert spec.verify(gpu)
        for block in result.blocks:
            assert block.num_warps == 1

    def test_dp_matrix_monotone_on_uniform_scores(self):
        wl = NeedleWorkload(num_tiles=1, penalty=1.0)
        gpu = GPU(GPUConfig.default_sim())
        spec = wl.build(gpu)
        gpu.launch(spec.kernel, spec.grid_dim, spec.block_dim)
        assert spec.verify(gpu)


class TestStreamcluster:
    def test_variants_have_expected_categories(self):
        assert StreamclusterWorkload(variant="small").category == "Sens"
        assert StreamclusterWorkload(variant="mid").category == "Non-sens"

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            StreamclusterWorkload(variant="large")

    def test_mid_variant_is_single_pass(self):
        assert StreamclusterWorkload(variant="mid").centers == 1


class TestScaling:
    @pytest.mark.parametrize("name", ["bfs", "kmeans", "heartwall"])
    def test_scale_shrinks_problem(self, name):
        small = make_workload(name, scale=0.25)
        large = make_workload(name, scale=1.0)
        g_small, g_large = GPU(GPUConfig.default_sim()), GPU(GPUConfig.default_sim())
        r_small = small.run(g_small, check=False)
        r_large = large.run(g_large, check=False)
        assert r_small.thread_instructions < r_large.thread_instructions
