"""Chrome-trace / CSV export tests: structure, determinism, golden output.

The Chrome Trace Format export must be loadable by Perfetto: a dict with a
``traceEvents`` list whose entries carry ``ph``/``pid``/``tid``/``ts``,
process/thread naming metadata, duration slices for issues and stalls, and
instants for memory events.  Byte determinism (same multiset of events →
identical file, regardless of input order) is what makes the sharded
equivalence test (``test_obs_sharded.py``) meaningful, so it is pinned
here on synthetic streams, including a full golden file.
"""

import json

from repro.obs import Ev, Stall, chrome_trace, events_csv, kind_counts, write_chrome_trace
from repro.obs.export import DEVICE_PID, MEM_TID

EVENTS = [
    (int(Ev.WARP_START), 0.0, 0, 0, 0),
    (int(Ev.WARP_ISSUE), 1.0, 0, 0, 0, 4, "ADD"),
    (int(Ev.WARP_STALL), 5.0, 0, 0, 0, int(Stall.MEM_PENDING), 3.0, 2.0),
    (int(Ev.WARP_ISSUE), 5.0, 0, 0, 0, 8, "LD"),
    (int(Ev.CACHE_MISS), 5.0, 0, 0, 8, 0x80, 1),
    (int(Ev.MSHR_ALLOC), 5.0, 0, 0x80, 205.0, 1),
    (int(Ev.L2_BANK), 6.0, 0, 2, 0, 0.0),
    (int(Ev.DRAM_ENQ), 16.0, 0, 0.0),
    (int(Ev.DRAM_SERVICE), 16.0, 0, 216.0),
    (int(Ev.CACHE_FILL), 5.0, 0, 0, 0x80, 1),
    (int(Ev.WARP_FINISH), 220.0, 0, 0, 0),
    (int(Ev.WARP_ISSUE), 2.0, 1, 3, 1, 4, "ADD"),
]


class TestChromeTrace:
    def doc(self):
        return chrome_trace(EVENTS)

    def test_top_level_shape(self):
        doc = self.doc()
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"

    def test_process_and_thread_metadata(self):
        doc = self.doc()
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["pid"], e["args"]["name"]) for e in metas}
        assert ("process_name", 1, "SM 0") in names
        assert ("process_name", 2, "SM 1") in names
        assert ("thread_name", 1, "mem") in names
        assert ("thread_name", 1, "b0/w0") in names
        assert ("thread_name", 2, "b3/w1") in names

    def test_issue_becomes_duration_slice(self):
        doc = self.doc()
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e.get("cat") == "issue"]
        assert len(slices) == 3
        add = slices[0]
        assert add["name"] == "ADD" and add["dur"] == 1
        assert add["pid"] == 1 and add["tid"] >= 1

    def test_stall_slice_spans_interval(self):
        doc = self.doc()
        stall = next(e for e in doc["traceEvents"] if e.get("cat") == "stall")
        assert stall["name"] == "mem_pending"
        assert stall["ts"] == 2.0 and stall["dur"] == 3.0

    def test_mem_events_are_instants_on_mem_track(self):
        doc = self.doc()
        instants = [e for e in doc["traceEvents"]
                    if e["ph"] == "i" and e.get("cat") == "mem"]
        assert instants and all(e["tid"] == MEM_TID for e in instants)
        miss = next(e for e in instants if "MISS" in e["name"])
        assert miss["name"] == "L1D_MISS"
        assert miss["args"]["line_addr"] == 0x80

    def test_no_pid_zero_and_device_pid_reserved(self):
        doc = self.doc()
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert 0 not in pids
        assert DEVICE_PID not in pids  # no sm == -1 events in this sample

    def test_json_serializable(self):
        json.dumps(self.doc())


class TestDeterminism:
    def test_input_order_does_not_matter(self, tmp_path):
        a = write_chrome_trace(EVENTS, tmp_path / "a.json")
        b = write_chrome_trace(list(reversed(EVENTS)), tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()

    def test_golden_single_event_export(self, tmp_path):
        """Exact serialized bytes for a one-event stream (format pin).

        If this breaks, the Chrome export format changed: bump consumers
        (CI artifact diffing, docs/observability.md examples) deliberately.
        """
        path = write_chrome_trace(
            [(int(Ev.WARP_ISSUE), 1.0, 0, 0, 0, 4, "ADD")], tmp_path / "g.json"
        )
        golden = (
            '{"displayTimeUnit":"ms","otherData":{"cycles_per_us":1,'
            '"source":"repro.obs"},"traceEvents":['
            '{"args":{"name":"SM 0"},"name":"process_name","ph":"M","pid":1,"tid":0},'
            '{"args":{"name":"mem"},"name":"thread_name","ph":"M","pid":1,"tid":0},'
            '{"args":{"name":"b0/w0"},"name":"thread_name","ph":"M","pid":1,"tid":1},'
            '{"args":{"pc":4},"cat":"issue","dur":1,"name":"ADD","ph":"X",'
            '"pid":1,"tid":1,"ts":1.0}]}\n'
        )
        assert path.read_text(encoding="utf-8") == golden


class TestCsvAndCounts:
    def test_csv_header_and_rows(self):
        text = events_csv(EVENTS)
        lines = text.strip().splitlines()
        assert lines[0].startswith("kind,cycle,sm,")
        assert len(lines) == 1 + len(EVENTS)
        assert any("WARP_ISSUE" in line for line in lines[1:])

    def test_kind_counts(self):
        counts = kind_counts(EVENTS)
        assert counts["WARP_ISSUE"] == 3
        assert counts["CACHE_MISS"] == 1
