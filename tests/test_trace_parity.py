"""Golden determinism: trace replay must exactly match execution-driven
simulation.

The trace frontend swaps the functional executor for a stream cursor but
leaves the issue core, scoreboard, LSU, caches, and DRAM untouched — so
cycle counts, issue statistics, and the entire cache/DRAM trace must be
bit-identical between the two frontends for every workload and scheme
(``docs/trace_driven.md``).  A fast subset runs in tier 1; the full
(workload x scheme) grid is marked ``slow``.

Each cell records once under the execute frontend, then replays the same
:class:`~repro.trace.TraceProgram` under the requested scheme.  Caches are
bypassed: the result-cache key deliberately excludes the frontend selector,
so a cached execute result could satisfy the replay run and mask a real
divergence.
"""

import pytest

from repro import trace as trace_mod
from repro.config import GPUConfig
from repro.core.cawa import SCHEMES, apply_scheme
from repro.experiments.runner import build_oracle, clear_cache, run_scheme
from repro.workloads import workload_names

#: Every scheduling/prioritization scheme the grid covers.  ``caws``
#: exercises the oracle path (profile run + priority replay) on top.
GRID_SCHEMES = ["rr", "gto", "two_level", "gcaws", "cawa", "caws"]
SCALE = 0.25

_PROGRAMS = {}


def _program(workload, scale=SCALE):
    """Record each workload once per session; every scheme replays it."""
    key = (workload, scale)
    if key not in _PROGRAMS:
        _, program = trace_mod.record_workload(
            workload, scale=scale, config=GPUConfig.default_sim()
        )
        _PROGRAMS[key] = program
    return _PROGRAMS[key]


def _signature(result):
    """Everything that must not drift between the two frontends."""
    return (
        result.cycles,
        result.warp_instructions,
        result.thread_instructions,
        result.l1_stats.accesses,
        result.l1_stats.hits,
        result.l1_stats.misses,
        result.l1_stats.bypasses,
        result.l1_stats.critical_hits,
        result.l2_stats.misses,
        result.dram_accesses,
    )


def _run_both(workload, scheme, scale=SCALE):
    base = GPUConfig.default_sim()
    execute = run_scheme(workload, scheme, scale=scale, config=base,
                         use_cache=False, persistent=False)
    cfg = apply_scheme(base, scheme)
    oracle = None
    if cfg.scheduler_name == "caws":
        clear_cache()
        oracle = build_oracle(workload, scale, base)
    replay = trace_mod.replay_program(
        _program(workload, scale), cfg, scheme=scheme, oracle=oracle
    )[-1]
    return execute, replay


class TestParityFast:
    """Tier-1 subset: one Sens workload across all grid schemes."""

    @pytest.mark.parametrize("scheme", GRID_SCHEMES)
    def test_synthetic_imbalance(self, scheme):
        execute, replay = _run_both("synthetic_imbalance", scheme)
        assert _signature(execute) == _signature(replay)

    def test_barrier_workload(self):
        # kmeans exercises block-wide barriers (barrier wake path).
        execute, replay = _run_both("kmeans", "cawa", scale=0.125)
        assert _signature(execute) == _signature(replay)

    def test_divergent_workload(self):
        execute, replay = _run_both("synthetic_divergence", "gcaws")
        assert _signature(execute) == _signature(replay)

    def test_multi_launch_replay_order(self):
        """A multi-launch program replays launches in recorded order with
        per-launch stats deltas matching execution."""
        program = _program("kmeans", 0.125)
        base = GPUConfig.default_sim()
        results = trace_mod.replay_program(program, base, scheme="rr")
        assert len(results) == len(program.launches)
        execute = run_scheme("kmeans", "rr", scale=0.125, config=base,
                             use_cache=False, persistent=False)
        assert _signature(results[-1]) == _signature(execute)


@pytest.mark.slow
class TestParityFullGrid:
    """The full golden grid: every Table 2 workload x every scheme."""

    @pytest.mark.parametrize("workload", workload_names())
    @pytest.mark.parametrize("scheme", GRID_SCHEMES)
    def test_grid_cell(self, workload, scheme):
        execute, replay = _run_both(workload, scheme)
        assert _signature(execute) == _signature(replay), (
            f"execute/trace divergence on {workload} x {scheme}"
        )


def test_all_grid_schemes_are_real():
    assert set(GRID_SCHEMES) <= set(SCHEMES)
