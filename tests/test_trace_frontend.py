"""The trace-driven frontend: record/replay round trips, the persistent
trace store, and its staleness guards.

The bit-identical parity contract (execute vs trace frontend over the full
workload x scheme grid) lives in ``tests/test_trace_parity.py``; this file
covers the subsystem's plumbing — format versioning, compression,
fingerprint/geometry/kernel mismatch errors, corruption recovery, the
runner's auto-record-on-miss path, and result provenance serialization.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro import trace as trace_mod
from repro.config import GPUConfig
from repro.errors import ConfigError, TraceFormatError, TraceMismatchError
from repro.experiments import runner
from repro.stats.counters import RunResult
from repro.trace.format import (
    TRACE_FORMAT_VERSION,
    TRACE_MAGIC,
    TraceProgram,
    kernel_fingerprint,
)

SCALE = 0.25


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Trace tests must not inherit memoized results from other files."""
    runner.clear_cache()
    yield
    runner.clear_cache()


def _record(workload="bfs", scale=SCALE, config=None, **kwargs):
    config = config or GPUConfig.default_sim()
    return trace_mod.record_workload(workload, scale=scale, config=config, **kwargs)


# ----------------------------------------------------------------------
# Record -> replay round trip (in memory)
# ----------------------------------------------------------------------
class TestRecordReplay:
    def test_replay_matches_recording_run(self, config):
        result, program = _record(config=config)
        replayed = trace_mod.replay_program(program, config, scheme="rr")
        assert len(replayed) == 1
        rep = replayed[0]
        assert rep.cycles == result.cycles
        assert rep.warp_instructions == result.warp_instructions
        assert rep.thread_instructions == result.thread_instructions
        assert rep.l1_stats.accesses == result.l1_stats.accesses
        assert rep.l1_stats.misses == result.l1_stats.misses
        assert rep.dram_accesses == result.dram_accesses

    def test_provenance_fields(self, config):
        result, program = _record(config=config)
        assert result.frontend == "execute"
        assert result.trace_id == program.trace_id
        rep = trace_mod.replay_program(program, config)[0]
        assert rep.frontend == "trace"
        assert rep.trace_id == program.trace_id

    def test_trace_id_is_content_addressed(self, config):
        _, a = _record(config=config)
        _, b = _record(config=config)
        assert a.trace_id == b.trace_id

    def test_record_count_positive(self, config):
        _, program = _record(config=config)
        assert program.record_count > 0
        assert len(program.launches) >= 1

    def test_recording_is_scheme_invariant(self, config):
        """Streams recorded under gto replay to the same cycles as rr's."""
        _, prog_rr = _record(config=config, scheme="rr")
        _, prog_gto = _record(config=config, scheme="gto")
        assert prog_rr.trace_id == prog_gto.trace_id


# ----------------------------------------------------------------------
# Serialization: bytes round trip, versioning, corruption
# ----------------------------------------------------------------------
class TestFormat:
    def test_bytes_round_trip(self, config):
        _, program = _record(config=config)
        blob = program.to_bytes()
        loaded = TraceProgram.from_bytes(blob)
        assert loaded.trace_id == program.trace_id
        assert loaded.functional_fingerprint == program.functional_fingerprint
        assert loaded.record_count == program.record_count
        rep = trace_mod.replay_program(loaded, config)[0]
        exec_result = runner.run_scheme(
            "bfs", "rr", scale=SCALE, config=config,
            use_cache=False, persistent=False,
        )
        assert rep.cycles == exec_result.cycles

    def test_blob_is_compressed_json(self, config):
        _, program = _record(config=config)
        blob = program.to_bytes()
        header = json.loads(zlib.decompress(blob).decode("utf-8"))
        assert header["magic"] == TRACE_MAGIC
        assert header["format_version"] == TRACE_FORMAT_VERSION
        assert len(blob) < len(zlib.decompress(blob))

    def test_version_bump_rejected(self, config):
        _, program = _record(config=config)
        payload = json.loads(zlib.decompress(program.to_bytes()).decode("utf-8"))
        payload["format_version"] = TRACE_FORMAT_VERSION + 1
        blob = zlib.compress(json.dumps(payload).encode("utf-8"))
        with pytest.raises(TraceFormatError, match="version"):
            TraceProgram.from_bytes(blob)

    def test_bad_magic_rejected(self):
        blob = zlib.compress(
            json.dumps({"magic": "nope", "format_version": 1}).encode()
        )
        with pytest.raises(TraceFormatError):
            TraceProgram.from_bytes(blob)

    def test_garbage_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceProgram.from_bytes(b"not a zlib stream at all")

    def test_kernel_fingerprint_stability(self, config):
        _, program = _record(config=config)
        launch = program.launches[0]
        assert launch.kernel_fp == kernel_fingerprint(launch.kernel)
        loaded = TraceProgram.from_bytes(program.to_bytes())
        assert loaded.launches[0].kernel_fp == launch.kernel_fp


# ----------------------------------------------------------------------
# Persistent trace store
# ----------------------------------------------------------------------
class TestStore:
    def test_save_load_round_trip(self, tmp_path, config):
        _, program = _record(config=config)
        path = trace_mod.store_program(program, "bfs", SCALE, config)
        assert path is not None and path.exists()
        loaded = trace_mod.load_program("bfs", SCALE, config)
        assert loaded is not None
        assert loaded.trace_id == program.trace_id

    def test_miss_returns_none(self, config):
        assert trace_mod.load_program("bfs", SCALE, config) is None

    def test_strict_miss_raises(self, config):
        with pytest.raises(TraceMismatchError, match="trace record"):
            trace_mod.load_program("bfs", SCALE, config, strict=True)

    def test_corrupt_file_evicted(self, config):
        _, program = _record(config=config)
        path = trace_mod.store_program(program, "bfs", SCALE, config)
        path.write_bytes(path.read_bytes()[:32])
        assert trace_mod.load_program("bfs", SCALE, config) is None
        assert not path.exists(), "corrupt trace must be unlinked"

    def test_timing_knobs_share_one_trace(self, config):
        """The store key uses the functional fingerprint only: scheduler
        and cache-size changes must map to the same trace file."""
        import dataclasses

        from repro.core.cawa import apply_scheme

        cawa_cfg = apply_scheme(config, "cawa")
        small_l1 = dataclasses.replace(
            config, l1d=dataclasses.replace(config.l1d, ways=2)
        )
        assert (
            trace_mod.trace_path("bfs", SCALE, config)
            == trace_mod.trace_path("bfs", SCALE, cawa_cfg)
            == trace_mod.trace_path("bfs", SCALE, small_l1)
        )

    def test_functional_knobs_split_traces(self, config):
        import dataclasses

        other = dataclasses.replace(
            config,
            l1d=dataclasses.replace(config.l1d, line_size=config.l1d.line_size * 2),
        )
        assert (
            trace_mod.trace_path("bfs", SCALE, config)
            != trace_mod.trace_path("bfs", SCALE, other)
        )

    def test_list_and_clear(self, config):
        _, program = _record(config=config)
        trace_mod.store_program(program, "bfs", SCALE, config)
        entries = trace_mod.list_traces()
        assert len(entries) == 1
        path, loaded = entries[0]
        assert loaded.workload == "bfs"
        assert trace_mod.clear() == 1
        assert trace_mod.list_traces() == []


# ----------------------------------------------------------------------
# Staleness guards at replay time
# ----------------------------------------------------------------------
class TestGuards:
    def test_fingerprint_mismatch(self, config):
        _, program = _record(config=config)
        program.functional_fingerprint = "0" * 16
        with pytest.raises(TraceMismatchError, match="fingerprint"):
            trace_mod.replay_program(program, config)

    def test_trace_frontend_requires_trace(self, config):
        from repro import GPU

        with pytest.raises(ConfigError, match="trace"):
            GPU(config.with_frontend("trace"))

    def test_invalid_frontend_name(self, config):
        with pytest.raises(ConfigError):
            config.with_frontend("hybrid")

    def test_trace_exhausted(self, config):
        from repro import GPU

        _, program = _record(config=config)
        gpu = GPU(config.with_frontend("trace"), trace=program)
        launch = program.launches[0]
        gpu.launch(launch.kernel, launch.grid_dim, launch.block_dim)
        with pytest.raises(TraceMismatchError, match="exhausted"):
            gpu.launch(launch.kernel, launch.grid_dim, launch.block_dim)

    def test_geometry_mismatch(self, config):
        from repro import GPU

        _, program = _record(config=config)
        gpu = GPU(config.with_frontend("trace"), trace=program)
        launch = program.launches[0]
        with pytest.raises(TraceMismatchError, match="geometry"):
            gpu.launch(launch.kernel, launch.grid_dim + 1, launch.block_dim)

    def test_kernel_mismatch(self, config):
        from repro import GPU
        from tests.conftest import build_copy_kernel

        _, program = _record(config=config)
        launch = program.launches[0]
        gpu = GPU(config.with_frontend("trace"), trace=program)
        other = build_copy_kernel(8, 0, 4096)
        with pytest.raises(TraceMismatchError, match="kernel"):
            gpu.launch(other, launch.grid_dim, launch.block_dim)


# ----------------------------------------------------------------------
# Runner integration: auto-record on miss, replay on hit
# ----------------------------------------------------------------------
class TestRunnerIntegration:
    def test_miss_records_then_hit_replays(self, config):
        tcfg = config.with_frontend("trace")
        first = runner.run_scheme("bfs", "rr", scale=SCALE, config=tcfg,
                                  use_cache=False, persistent=False)
        assert first.frontend == "execute"
        assert first.trace_id not in (None, "recording")
        second = runner.run_scheme("bfs", "gto", scale=SCALE, config=tcfg,
                                   use_cache=False, persistent=False)
        assert second.frontend == "trace"
        assert second.trace_id == first.trace_id

    def test_replay_matches_execute_frontend(self, config):
        tcfg = config.with_frontend("trace")
        runner.run_scheme("bfs", "rr", scale=SCALE, config=tcfg,
                          use_cache=False, persistent=False)  # record
        rep = runner.run_scheme("bfs", "cawa", scale=SCALE, config=tcfg,
                                use_cache=False, persistent=False)
        ex = runner.run_scheme("bfs", "cawa", scale=SCALE, config=config,
                               use_cache=False, persistent=False)
        assert rep.frontend == "trace" and ex.frontend == "execute"
        assert rep.cycles == ex.cycles
        assert rep.l1_stats.misses == ex.l1_stats.misses
        assert rep.dram_accesses == ex.dram_accesses

    def test_result_cache_shared_across_frontends(self, config):
        """fingerprint() excludes the frontend, so a trace-frontend result
        satisfies a later execute-frontend request from the disk cache."""
        tcfg = config.with_frontend("trace")
        first = runner.run_scheme("bfs", "gto", scale=SCALE, config=tcfg)
        runner.clear_cache()  # drop memoization, keep the disk cache
        second = runner.run_scheme("bfs", "gto", scale=SCALE, config=config)
        assert second.cycles == first.cycles
        assert second.trace_id == first.trace_id

    def test_accuracy_observer_rides_replay(self, config):
        tcfg = config.with_frontend("trace")
        runner.run_scheme("bfs", "rr", scale=SCALE, config=tcfg,
                          use_cache=False, persistent=False)  # record
        rep = runner.run_scheme("bfs", "cawa", scale=SCALE, config=tcfg,
                                with_accuracy=True,
                                use_cache=False, persistent=False)
        assert rep.frontend == "trace"
        assert "cpl_accuracy" in rep.extra

    def test_clear_cache_disk_wipes_traces(self, config):
        tcfg = config.with_frontend("trace")
        runner.run_scheme("bfs", "rr", scale=SCALE, config=tcfg,
                          use_cache=False, persistent=False)
        assert trace_mod.list_traces()
        runner.clear_cache(disk=True)
        assert trace_mod.list_traces() == []


# ----------------------------------------------------------------------
# Satellite: RunResult serialization carries provenance
# ----------------------------------------------------------------------
class TestResultProvenance:
    def test_dict_round_trip(self, config):
        _, program = _record(config=config)
        rep = trace_mod.replay_program(program, config)[0]
        data = rep.to_dict()
        assert data["frontend"] == "trace"
        assert data["trace_id"] == program.trace_id
        back = RunResult.from_dict(data)
        assert back.frontend == "trace"
        assert back.trace_id == program.trace_id
        assert back.cycles == rep.cycles

    def test_legacy_dict_defaults(self):
        """PR-1 cache entries (no frontend/trace_id keys) still load."""
        _, program = _record()
        rep = trace_mod.replay_program(program, GPUConfig.default_sim())[0]
        data = rep.to_dict()
        del data["frontend"]
        del data["trace_id"]
        back = RunResult.from_dict(data)
        assert back.frontend == "execute"
        assert back.trace_id is None
