"""Unit tests for the time-skipping clock's building blocks.

Covers the :class:`~repro.gpu.clock.DeviceEventHeap` (duplicate times,
past-time pushes, empty-heap fast-forward), the stale-``now`` clamping in
the DRAM/L2 queue-delay accessors that skip boundaries exposed, and the
skip-run provenance counters on :class:`~repro.stats.counters.RunResult`.
The bit-identity guarantee itself lives in ``tests/test_skip_clock_parity.py``.
"""

import math

import pytest

from repro.config import CacheConfig, GPUConfig
from repro.errors import ConfigError
from repro.experiments.runner import run_scheme
from repro.gpu.clock import DeviceEventHeap
from repro.memory.dram import DRAMModel
from repro.memory.l2 import BankedL2


class TestDeviceEventHeap:
    def test_pop_due_returns_sources_in_id_order(self):
        heap = DeviceEventHeap(4)
        # Duplicate times on purpose: 3 and 1 collide at t=5.
        heap.schedule(3, 5.0)
        heap.schedule(0, 7.0)
        heap.schedule(1, 5.0)
        heap.schedule(2, 6.0)
        assert heap.next_time() == 5.0
        assert heap.pop_due(5.0) == [1, 3]
        assert heap.pop_due(6.5) == [2]
        assert heap.pop_due(100.0) == [0]
        assert heap.pop_due(1000.0) == []

    def test_reschedule_replaces_previous_entry(self):
        heap = DeviceEventHeap(2)
        heap.schedule(0, 5.0)
        heap.schedule(0, 9.0)  # supersedes the t=5 entry
        heap.schedule(1, 7.0)
        assert heap.scheduled_time(0) == 9.0
        assert heap.pop_due(5.0) == []  # stale t=5 entry must not fire
        assert heap.next_time() == 7.0
        assert heap.pop_due(9.0) == [0, 1]

    def test_past_time_pushes_are_accepted_as_is(self):
        # The heap does not clamp: a push into the past is immediately due.
        heap = DeviceEventHeap(2)
        heap.schedule(0, 10.0)
        heap.schedule(1, 3.0)  # "past" relative to the device clock
        assert heap.next_time() == 3.0
        assert heap.pop_due(10.0) == [0, 1]

    def test_inf_parks_a_source(self):
        heap = DeviceEventHeap(2)
        heap.schedule(0, 4.0)
        heap.schedule(1, 2.0)
        heap.schedule(1, math.inf)  # park: no heap entry, stale one dies
        assert len(heap) == 1
        assert heap.next_time() == 4.0
        assert heap.pop_due(10.0) == [0]
        assert math.isinf(heap.next_time())

    def test_empty_heap_fast_forwards_to_default(self):
        heap = DeviceEventHeap(3)
        assert heap.fast_forward(123.0) == 123.0
        heap.schedule(2, 50.0)
        assert heap.fast_forward(123.0) == 50.0
        heap.pop_due(50.0)
        assert heap.fast_forward(999.0) == 999.0  # popped sources are parked

    def test_pop_due_parks_until_rescheduled(self):
        heap = DeviceEventHeap(1)
        heap.schedule(0, 1.0)
        assert heap.pop_due(1.0) == [0]
        assert math.isinf(heap.scheduled_time(0))
        assert heap.pop_due(2.0) == []
        heap.schedule(0, 2.0)
        assert heap.pop_due(2.0) == [0]

    def test_len_counts_live_sources_not_stale_entries(self):
        heap = DeviceEventHeap(3)
        assert len(heap) == 0
        heap.schedule(0, 5.0)
        heap.schedule(0, 6.0)  # stale entry remains in the raw heap
        heap.schedule(1, 7.0)
        assert len(heap) == 2


class TestQueueDelayAtSkipBoundaries:
    """Satellite fix: queue stats must clamp against a jumped clock."""

    def test_dram_queue_delay_clamps_stale_now(self):
        dram = DRAMModel(latency=100, service_interval=4)
        dram.access(0.0)
        dram.access(0.0)  # backlog: channel free at t=8
        assert dram.queue_delay(2.0) == 6.0
        # Clock skipped past the backlog: delay is zero, never negative.
        assert dram.queue_delay(50.0) == 0.0

    def test_dram_queue_delay_estimate_reports_mean_wait(self):
        dram = DRAMModel(latency=100, service_interval=4)
        dram.access(0.0)  # waits 0
        dram.access(0.0)  # waits 4
        # Mean *queueing* wait, not mean service occupancy.
        assert dram.queue_delay_estimate() == 2.0
        # Probed mid-backlog, the live queue is a floor on the estimate.
        assert dram.queue_delay_estimate(now=0.0) == 8.0
        # Probed long after the burst drained, the mean stands.
        assert dram.queue_delay_estimate(now=100.0) == 2.0

    def test_dram_queue_delay_estimate_empty(self):
        dram = DRAMModel(latency=100, service_interval=4)
        assert dram.queue_delay_estimate() == 0.0
        assert dram.queue_delay_estimate(now=5.0) == 0.0

    def test_dram_next_event_time(self):
        dram = DRAMModel(latency=100, service_interval=4)
        assert math.isinf(dram.next_event_time(0.0))
        dram.access(10.0)  # channel busy until t=14
        assert dram.next_event_time(10.0) == 14.0
        assert math.isinf(dram.next_event_time(14.0))

    def _l2(self, num_banks=2):
        return BankedL2(CacheConfig(sets=4, ways=2), num_banks=num_banks,
                        latency=10, service_interval=4)

    def test_l2_bank_busy_cycles_clamps_per_bank(self):
        from repro.memory.request import MemRequest

        l2 = self._l2()
        # Two accesses to bank 0 (line 0), one to bank 1 (line 1).
        for line in (0, 0, 1):
            req = MemRequest(line_addr=line * 128, pc=0,
                             warp_key=(0, 0, 0), is_load=True,
                             is_critical=False, cycle=0.0)
            l2.access(req, 0.0)
        # bank0 free at 8, bank1 free at 4.
        assert l2.bank_busy_cycles(0.0) == 12.0
        # Clock jumped to t=6: bank1's stale backlog must not go negative.
        assert l2.bank_busy_cycles(6.0) == 2.0
        assert l2.bank_busy_cycles(100.0) == 0.0

    def test_l2_next_event_time(self):
        from repro.memory.request import MemRequest

        l2 = self._l2()
        assert math.isinf(l2.next_event_time(0.0))
        req = MemRequest(line_addr=0, pc=0, warp_key=(0, 0, 0),
                         is_load=True, is_critical=False, cycle=0.0)
        l2.access(req, 0.0)  # bank 0 busy until t=4
        assert l2.next_event_time(0.0) == 4.0
        assert math.isinf(l2.next_event_time(4.0))


class TestSkipRunProvenance:
    def test_skip_run_records_clock_and_skip_counters(self):
        cfg = GPUConfig.default_sim().with_clock("skip")
        result = run_scheme("synthetic_imbalance", "rr", scale=0.25,
                            config=cfg, use_cache=False, persistent=False)
        assert result.clock == "skip"
        assert result.shards == 1
        # A memory-bound cell stalls; the skip clock must jump over those
        # idle cycles rather than visiting them.
        assert result.skip_jumps > 0
        assert result.cycles_skipped > 0

    def test_cycle_run_records_default_clock(self):
        result = run_scheme("synthetic_imbalance", "rr", scale=0.25,
                            config=GPUConfig.default_sim(),
                            use_cache=False, persistent=False)
        assert result.clock == "cycle"

    def test_round_trip_preserves_skip_counters(self):
        from repro.stats.counters import RunResult

        cfg = GPUConfig.default_sim().with_clock("skip")
        result = run_scheme("synthetic_imbalance", "gto", scale=0.25,
                            config=cfg, use_cache=False, persistent=False)
        clone = RunResult.from_dict(result.to_dict())
        assert clone.clock == result.clock
        assert clone.cycles_skipped == result.cycles_skipped
        assert clone.skip_jumps == result.skip_jumps


class TestConfigValidation:
    def test_unknown_clock_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig.default_sim(clock="warp")

    def test_shards_require_trace_frontend(self):
        with pytest.raises(ConfigError):
            GPUConfig.default_sim().with_shards(2)
        cfg = GPUConfig.default_sim().with_frontend("trace").with_shards(2)
        assert cfg.shards == 2

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig.default_sim().with_frontend("trace").with_shards(0)


def test_profile_component_mapping():
    from repro.experiments.profiling import _component_of

    assert _component_of("/x/src/repro/sm/sm.py") == "repro.sm"
    assert _component_of("/x/src/repro/memory/cache.py") == "repro.memory"
    assert _component_of("/usr/lib/python3.11/heapq.py") == "other"
