"""Tests for CCBP and the CACP cache management policy (Algorithm 4)."""

import pytest

from repro.config import CacheConfig
from repro.core.cacp import CACPPolicy, RRPV_PROTECTED
from repro.core.ccbp import CriticalCacheBlockPredictor
from repro.memory.cache import Cache
from repro.memory.replacement import RRPV_MAX
from repro.memory.request import MemRequest, make_signature


def req(line_addr, pc=0, critical=False):
    return MemRequest(line_addr, pc, (0, 0, 0), True, critical, 0.0,
                      make_signature(pc, line_addr))


class TestCCBP:
    def test_initially_non_critical(self):
        ccbp = CriticalCacheBlockPredictor()
        assert not ccbp.predicts_critical(5)

    def test_training_flips_prediction(self):
        ccbp = CriticalCacheBlockPredictor()
        ccbp.train_critical_reuse(5)
        assert ccbp.predicts_critical(5)

    def test_wrong_routing_untrains(self):
        ccbp = CriticalCacheBlockPredictor()
        ccbp.train_critical_reuse(5)
        ccbp.train_wrong_routing(5)
        assert not ccbp.predicts_critical(5)

    def test_counters_saturate(self):
        ccbp = CriticalCacheBlockPredictor(counter_max=3)
        for _ in range(10):
            ccbp.train_critical_reuse(5)
        assert ccbp.table[ccbp._index(5)] == 3
        for _ in range(10):
            ccbp.train_wrong_routing(5)
        assert ccbp.table[ccbp._index(5)] == 0

    def test_signature_aliasing_by_table_size(self):
        ccbp = CriticalCacheBlockPredictor(table_size=16)
        ccbp.train_critical_reuse(3)
        assert ccbp.predicts_critical(3 + 16)


class TestCACPModes:
    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            CACPPolicy(critical_ways=0, total_ways=16)
        with pytest.raises(ValueError):
            CACPPolicy(critical_ways=16, total_ways=16)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            CACPPolicy(critical_ways=8, total_ways=16, mode="magic")

    def test_priority_mode_uses_full_set(self):
        policy = CACPPolicy(critical_ways=8, total_ways=16, mode="priority")
        assert policy.way_range([], req(0), 16) == (0, 16)

    def test_static_mode_routes_by_classification(self):
        policy = CACPPolicy(critical_ways=8, total_ways=16, mode="static")
        assert policy.way_range([], req(0, critical=False), 16) == (8, 16)
        assert policy.way_range([], req(0, critical=True), 16) == (0, 8)

    def test_requester_criticality_is_a_prior(self):
        policy = CACPPolicy(critical_ways=8, total_ways=16)
        assert policy.classify_critical(req(0, critical=True))
        assert not policy.classify_critical(req(0, critical=False))
        policy.ccbp.train_critical_reuse(req(0).signature)
        assert policy.classify_critical(req(0, critical=False))


class TestCACPInCache:
    def make_cache(self, mode="priority"):
        cfg = CacheConfig(sets=1, ways=4, line_size=128, critical_ways=2)
        return Cache(cfg, CACPPolicy(critical_ways=2, total_ways=4, mode=mode))

    def test_critical_fill_protected_insertion(self):
        cache = self.make_cache()
        cache.access(req(0, critical=True))
        line = cache.lookup(0)
        assert line.rrpv == RRPV_PROTECTED
        assert line.in_critical_partition

    def test_non_critical_fill_ship_insertion(self):
        cache = self.make_cache()
        cache.access(req(0, critical=False))
        line = cache.lookup(0)
        assert line.rrpv in (2, RRPV_MAX)
        assert not line.in_critical_partition

    def test_hit_trains_predictors_per_algorithm4(self):
        cache = self.make_cache()
        policy = cache.policy
        cache.access(req(0, critical=True))
        sig = req(0).signature
        before = policy.ccbp.table[policy.ccbp._index(sig)]
        cache.access(req(0, critical=True))  # critical hit
        assert policy.ccbp.table[policy.ccbp._index(sig)] == before + 1
        line = cache.lookup(0)
        assert line.c_reuse and not line.nc_reuse

    def test_non_critical_hit_sets_nc_reuse(self):
        cache = self.make_cache()
        cache.access(req(0, critical=True))
        cache.access(req(0, critical=False))
        line = cache.lookup(0)
        assert line.nc_reuse

    def test_eviction_trains_wrong_routing(self):
        cache = self.make_cache()
        policy = cache.policy
        sig = req(0).signature
        policy.ccbp.train_critical_reuse(sig)  # route signature critical
        cache.access(req(0, critical=False))  # fills as critical via CCBP
        line = cache.lookup(0)
        assert line.in_critical_partition
        cache.access(req(0, critical=False))  # non-critical reuse only
        before = policy.ccbp.table[policy.ccbp._index(sig)]
        policy.on_evict(line, req(0))
        assert policy.ccbp.table[policy.ccbp._index(sig)] == before - 1

    def test_zero_reuse_eviction_trains_ship(self):
        cache = self.make_cache()
        policy = cache.policy
        sig = req(0, pc=3).signature
        before = policy.ship.table[policy.ship._index(sig)]
        cache.access(req(0, pc=3, critical=False))
        line = cache.lookup(0)
        policy.on_evict(line, req(0, pc=3))
        assert policy.ship.table[policy.ship._index(sig)] == before - 1

    def test_static_mode_cold_start_uses_any_invalid_way(self):
        cache = self.make_cache(mode="static")
        # Fill 3 non-critical lines into a 4-way set whose non-critical
        # partition is only ways 2-3: the third fill must use an invalid
        # critical way rather than evicting.
        for i in range(3):
            cache.access(req(i * 128, critical=False))
        assert cache.stats.evictions == 0

    def test_dynamic_mode_retunes_boundary(self):
        policy = CACPPolicy(critical_ways=8, total_ways=16, mode="dynamic")
        policy._tune_interval = 4
        cfg = CacheConfig(sets=1, ways=16, line_size=128, critical_ways=8)
        cache = Cache(cfg, policy)
        cache.access(req(0, critical=True))
        for _ in range(6):
            cache.access(req(0, critical=True))  # critical-partition hits
        assert policy.critical_ways > 8
