"""CAWA through the FeedbackChannel must bit-match the hand-wired coupling.

``feedback='direct'`` binds the CPL predictor's ``is_critical`` onto the
SM (and through it the CACP L1 policy) at construction time, exactly as
the pre-channel code did; ``feedback='channel'`` (the default) routes the
same bound method through the per-SM FeedbackChannel.  The two wirings
must be *bit-identical* — cycles, instruction totals, the full cache
trace (including CACP's ``critical_hits``), and every per-warp execution
time — on every CAWA-family scheme.  A fast subset runs in tier 1; the
full (scheme x frontend x clock x backend) grid is marked ``slow``.
"""

import pytest

from repro import trace as trace_mod
from repro.config import GPUConfig
from repro.core.cawa import apply_scheme
from repro.experiments.runner import run_scheme

#: Every scheme whose L1 policy consumes criticality verdicts, plus the
#: scheduler-only half of the design as a control.
CAWA_SCHEMES = ["cawa", "cawa+bypass", "cawa+mshr", "gto+cacp", "gcaws"]
SCALE = 0.25
WORKLOAD = "backprop"

_PROGRAMS = {}


def _program(workload, scale=SCALE):
    key = (workload, scale)
    if key not in _PROGRAMS:
        _, program = trace_mod.record_workload(
            workload, scale=scale, config=GPUConfig.default_sim()
        )
        _PROGRAMS[key] = program
    return _PROGRAMS[key]


def _signature(result):
    """Everything that must not drift between the two wirings."""
    return (
        result.cycles,
        result.warp_instructions,
        result.thread_instructions,
        result.l1_stats.accesses,
        result.l1_stats.hits,
        result.l1_stats.misses,
        result.l1_stats.bypasses,
        result.l1_stats.critical_hits,
        result.l2_stats.accesses,
        result.l2_stats.misses,
        result.dram_accesses,
        tuple(tuple(block.warp_execution_times()) for block in result.blocks),
    )


def _run(scheme, feedback, frontend="execute", clock="cycle",
         backend="python", workload=WORKLOAD, scale=SCALE):
    base = (
        GPUConfig.default_sim()
        .with_feedback(feedback)
        .with_clock(clock)
        .with_backend(backend)
    )
    if frontend == "execute":
        return run_scheme(workload, scheme, scale=scale, config=base,
                          use_cache=False, persistent=False)
    cfg = apply_scheme(base.with_frontend("trace"), scheme)
    return trace_mod.replay_program(
        _program(workload, scale), cfg, scheme=scheme
    )[-1]


def _assert_wiring_parity(scheme, **modes):
    channel = _run(scheme, "channel", **modes)
    direct = _run(scheme, "direct", **modes)
    assert _signature(channel) == _signature(direct), (
        f"channel/direct divergence on {scheme} ({modes or 'defaults'})"
    )


class TestWiringParityFast:
    """Tier-1 subset: the full coordinated design on both frontends."""

    @pytest.mark.parametrize("scheme", ["cawa", "gcaws"])
    def test_execute_frontend(self, scheme):
        _assert_wiring_parity(scheme)

    def test_trace_frontend(self):
        _assert_wiring_parity("cawa", frontend="trace")

    def test_skip_clock(self):
        _assert_wiring_parity("cawa", clock="skip")

    def test_vector_backend(self):
        _assert_wiring_parity("cawa", backend="vector")


@pytest.mark.slow
class TestWiringParityFullGrid:
    """Every CAWA-family scheme x frontend x clock x backend."""

    @pytest.mark.parametrize("backend", ["python", "vector"])
    @pytest.mark.parametrize("clock", ["cycle", "skip"])
    @pytest.mark.parametrize("frontend", ["execute", "trace"])
    @pytest.mark.parametrize("scheme", CAWA_SCHEMES)
    def test_grid_cell(self, scheme, frontend, clock, backend):
        _assert_wiring_parity(
            scheme, frontend=frontend, clock=clock, backend=backend
        )
