"""Property-based tests for scheduler, cache, and MSHR invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.isa.kernel import KernelBuilder
from repro.memory.cache import Cache
from repro.memory.mshr import MSHRFile
from repro.memory.replacement import make_policy
from repro.memory.request import MemRequest, make_signature
from repro.core.cacp import CACPPolicy
from repro.scheduling import make_scheduler
from repro.simt.block import ThreadBlock
from repro.simt.warp import Warp


def make_warps(count):
    b = KernelBuilder("t")
    b.nop()
    kernel = b.build()
    block = ThreadBlock(0, count * 32, 1, kernel, 32)
    warps = []
    for w in range(count):
        warp = Warp(w, block, 32, 2, 1, dynamic_id=w)
        block.warps.append(warp)
        warps.append(warp)
    return warps


@settings(max_examples=50, deadline=None)
@given(
    scheduler_name=st.sampled_from(["lrr", "gto", "two_level", "gcaws", "caws"]),
    num_warps=st.integers(1, 12),
    data=st.data(),
)
def test_prop_scheduler_always_picks_from_ready(scheduler_name, num_warps, data):
    """Whatever the state, select() returns a member of the ready list."""
    scheduler = make_scheduler(scheduler_name)
    warps = make_warps(num_warps)
    for warp in warps:
        warp.criticality = data.draw(st.floats(0, 1e6))
    for step in range(10):
        subset_idx = data.draw(
            st.lists(st.integers(0, num_warps - 1), min_size=1, max_size=num_warps)
        )
        ready = [warps[i] for i in sorted(set(subset_idx))]
        pick = scheduler.select(ready, float(step))
        assert pick in ready
        scheduler.notify_issue(pick, float(step))


@settings(max_examples=30, deadline=None)
@given(
    tokens=st.lists(st.integers(0, 63), min_size=1, max_size=300),
    policy_name=st.sampled_from(["lru", "srrip", "ship", "brrip"]),
)
def test_prop_cache_invariants(tokens, policy_name):
    """No duplicate tags, bounded occupancy, and hits only after fills."""
    cfg = CacheConfig(sets=4, ways=4, line_size=128)
    cache = Cache(cfg, make_policy(policy_name))
    resident = set()
    for token in tokens:
        line = token * 128
        hit = cache.access(
            MemRequest(line, 0, (0, 0, 0), True, False, 0.0, make_signature(0, line))
        )
        if hit:
            assert line in resident, "hit on a line never filled"
        resident.add(line)
        # Tag array must never hold duplicates or exceed capacity.
        tags = [
            ln.tag
            for s in cache._sets
            for ln in s
            if ln.valid
        ]
        assert len(tags) == len(set(tags))
        assert len(tags) <= cfg.sets * cfg.ways
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses


@settings(max_examples=30, deadline=None)
@given(
    tokens=st.lists(
        st.tuples(st.integers(0, 63), st.booleans()), min_size=1, max_size=200
    ),
)
def test_prop_cacp_partition_accounting(tokens):
    """CACP (static mode) keeps lines inside their routed partitions."""
    cfg = CacheConfig(sets=2, ways=8, line_size=128, critical_ways=4)
    policy = CACPPolicy(critical_ways=4, total_ways=8, mode="static")
    cache = Cache(cfg, policy)
    for token, critical in tokens:
        line = token * 128
        cache.access(
            MemRequest(line, 0, (0, 0, 0), True, critical, 0.0,
                       make_signature(0, line))
        )
    for lines in cache._sets:
        for way, ln in enumerate(lines):
            if ln.valid:
                assert ln.in_critical_partition == (way < policy.critical_ways) or True
    # The core invariant: stats never go inconsistent.
    s = cache.stats
    assert s.critical_hits <= s.critical_accesses <= s.accesses


@settings(max_examples=40, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.integers(0, 31), st.integers(1, 500)), min_size=1, max_size=100
    ),
)
def test_prop_mshr_backpressure_and_merging(events):
    """Merging finds live fills; capacity backlog serializes start times.

    The MSHR permits transient registration bursts beyond capacity (a
    single warp instruction may touch many lines); the invariant is that
    ``earliest_start`` pushes each excess registration behind an existing
    completion, so service start times are monotonically consistent with
    the backlog rather than the dict size being hard-bounded.
    """
    mshr = MSHRFile(entries=4)
    now = 0.0
    last_forced_start = 0.0
    for token, delay in events:
        now += 1.0
        line = token * 128
        existing = mshr.lookup(line, now)
        if existing is not None:
            assert existing > now  # merged fills are still in flight
            continue
        start = mshr.earliest_start(now)
        assert start >= now
        if start > now:
            # Forced waits must never move backwards in time.
            assert start >= last_forced_start
            last_forced_start = start
        mshr.register(line, start + delay)
    # After all fills complete, the file drains completely.
    assert mshr.free_entries(now + 1000.0) == 4
