"""Shared fixtures and kernel-building helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GPU, GPUConfig, KernelBuilder
from repro.config import CacheConfig
from repro.isa.instructions import CmpOp, Special


def pytest_collection_modifyitems(items):
    """Auto-tag: every test not marked ``slow`` belongs to tier 1."""
    for item in items:
        if "slow" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the persistent result cache at a per-test scratch directory.

    Unit tests must never read results written by earlier runs (or other
    test files) from the repo-level ``.repro_cache/``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro_cache"))


@pytest.fixture
def config():
    """A small, fast configuration for unit tests."""
    return GPUConfig.default_sim()

@pytest.fixture
def tiny_config():
    """Single-SM configuration for deterministic pipeline tests."""
    return GPUConfig.default_sim(num_sms=1, num_schedulers_per_sm=1)


@pytest.fixture
def gpu(config):
    return GPU(config)


@pytest.fixture
def tiny_gpu(tiny_config):
    return GPU(tiny_config)


def build_copy_kernel(n: int, src_base: int, dst_base: int):
    """out[i] = in[i] for i < n."""
    b = KernelBuilder("copy")
    i = b.sreg(Special.GTID)
    p = b.pred()
    b.setp(p, CmpOp.LT, i, float(n))
    with b.if_then(p):
        x = b.ld(b.addr(i, base=src_base, scale=8))
        b.st(b.addr(i, base=dst_base, scale=8), x)
    return b.build()


def build_loop_sum_kernel(n: int, trips_base: int, out_base: int):
    """out[i] = sum_{j<trips[i]} j."""
    b = KernelBuilder("loop_sum")
    i = b.sreg(Special.GTID)
    p = b.pred()
    b.setp(p, CmpOp.LT, i, float(n))
    with b.if_then(p):
        limit = b.ld(b.addr(i, base=trips_base, scale=8))
        acc = b.const(0.0)
        j = b.const(0.0)
        done = b.pred()
        with b.loop() as lp:
            b.setp(done, CmpOp.GE, j, limit)
            lp.break_if(done)
            b.add(acc, acc, j)
            b.add(j, j, 1.0)
        b.st(b.addr(i, base=out_base, scale=8), acc)
    return b.build()
