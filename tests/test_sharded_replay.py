"""Sharded multi-SM trace replay must be bit-identical to serial replay.

The sharded engine (:mod:`repro.gpu.sharded`) partitions SMs across
fork-spawned worker processes and serializes every shared L2/DRAM access
through a coordinator in ``(tick_cycle, sm_id)`` order — exactly the order
the serial loop produces.  These tests pin that equivalence (cycles,
instruction totals, the full cache/DRAM trace, per-warp execution times),
the determinism of repeated sharded runs, and every guarded error path
(execute frontend, live observers, non-resident grids, missing fork).
"""

import multiprocessing

import pytest

from repro import trace as trace_mod
from repro.config import GPUConfig
from repro.core.cawa import apply_scheme
from repro.errors import ConfigError
from repro.experiments.runner import run_scheme

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded replay requires the fork start method",
)

#: Wide enough for strcltr_mid scale=1 (4 blocks) to be fully resident.
NUM_SMS = 4

_PROGRAMS = {}


def _config():
    return GPUConfig.default_sim(num_sms=NUM_SMS).with_frontend("trace")


def _program(workload, scale):
    key = (workload, scale)
    if key not in _PROGRAMS:
        _, program = trace_mod.record_workload(
            workload, scale=scale, config=GPUConfig.default_sim(num_sms=NUM_SMS)
        )
        _PROGRAMS[key] = program
    return _PROGRAMS[key]


def _signature(result):
    return (
        result.cycles,
        result.warp_instructions,
        result.thread_instructions,
        result.l1_stats.accesses,
        result.l1_stats.hits,
        result.l1_stats.misses,
        result.l1_stats.bypasses,
        result.l1_stats.critical_hits,
        result.l2_stats.accesses,
        result.l2_stats.misses,
        result.dram_accesses,
        tuple(tuple(block.warp_execution_times()) for block in result.blocks),
    )


def _replay(workload, scale, scheme, shards):
    cfg = apply_scheme(_config().with_shards(shards), scheme)
    return trace_mod.replay_program(
        _program(workload, scale), cfg, scheme=scheme
    )[-1]


@needs_fork
class TestShardedBitIdentity:
    @pytest.mark.parametrize("scheme", ["gto", "cawa"])
    def test_strcltr_two_shards(self, scheme):
        serial = _replay("strcltr_mid", 1.0, scheme, shards=1)
        sharded = _replay("strcltr_mid", 1.0, scheme, shards=2)
        assert _signature(sharded) == _signature(serial)

    def test_bfs_three_shards(self):
        serial = _replay("bfs", 0.25, "gto", shards=1)
        sharded = _replay("bfs", 0.25, "gto", shards=3)
        assert _signature(sharded) == _signature(serial)

    def test_sharded_run_is_deterministic(self):
        first = _replay("strcltr_mid", 1.0, "rr", shards=2)
        second = _replay("strcltr_mid", 1.0, "rr", shards=2)
        assert _signature(first) == _signature(second)

    def test_merged_result_provenance(self):
        result = _replay("strcltr_mid", 1.0, "gto", shards=2)
        assert result.shards == 2
        assert result.clock == "skip" or result.clock == "cycle"
        # Blocks from all shards, merged in block-id order.
        ids = [block.block_id for block in result.blocks]
        assert ids == sorted(ids)
        assert len(ids) == 4  # strcltr_mid scale=1 grid

    def test_shards_capped_at_num_sms(self):
        # More shards than SMs degrades to one SM per worker, still exact.
        serial = _replay("strcltr_mid", 1.0, "rr", shards=1)
        sharded = _replay("strcltr_mid", 1.0, "rr", shards=NUM_SMS + 3)
        assert _signature(sharded) == _signature(serial)


@needs_fork
class TestRunSchemeIntegration:
    def test_run_scheme_shards_flag_matches_serial(self):
        cfg = GPUConfig.default_sim(num_sms=NUM_SMS)
        serial = run_scheme("strcltr_mid", "gto", scale=1.0,
                            config=cfg.with_frontend("trace"),
                            use_cache=False, persistent=False)
        # Plain execute-frontend config: run_scheme flips to trace itself.
        sharded = run_scheme("strcltr_mid", "gto", scale=1.0, config=cfg,
                             shards=2, use_cache=False, persistent=False)
        assert sharded.shards == 2
        assert _signature(sharded) == _signature(serial)


class TestGuardRails:
    def test_execute_frontend_rejects_shards(self):
        with pytest.raises(ConfigError):
            GPUConfig.default_sim().with_shards(2)

    @needs_fork
    def test_observers_cannot_cross_process_boundaries(self):
        class Observer:
            def on_issue(self, *a, **k):  # pragma: no cover - never called
                pass

        cfg = _config().with_shards(2)
        with pytest.raises(ConfigError, match="observers"):
            trace_mod.replay_program(
                _program("strcltr_mid", 1.0), cfg, scheme="rr",
                observers=[Observer()],
            )

    def test_non_resident_grid_rejected(self):
        from repro.gpu.sharded import _check_grid_resident

        class Kernel:
            num_regs = 8

        class Launch:
            kernel = Kernel()
            grid_dim = 100
            block_dim = 64

        class Program:
            launches = [Launch()]

        cfg = GPUConfig.default_sim(num_sms=2)
        with pytest.raises(ConfigError, match="resident"):
            _check_grid_resident(cfg, Program())

    @needs_fork
    def test_non_resident_grid_rejected_end_to_end(self):
        # 4 blocks cannot all be resident on 1 SM x 2 blocks.
        cfg = GPUConfig.default_sim(
            num_sms=1, max_blocks_per_sm=2
        ).with_frontend("trace").with_shards(2)
        with pytest.raises(ConfigError, match="resident"):
            trace_mod.replay_program(
                _program("strcltr_mid", 1.0), cfg, scheme="rr"
            )
