"""Exactness of the vector backend's memory-layer batch primitives.

Each primitive — the :class:`~repro.memory.vector.TagMirror` tag directory
and victim selection, the cache's batched all-hit path, the MSHR batch
lookup, the DRAM closed-form queue arithmetic, and the L2 bank helpers —
claims *bit-identical* results to the scalar loop it replaces.  These
tests drive mirrored and scalar twins through identical randomized
request streams and compare every externally visible outcome: hit/miss
sequences, victim choices, replacement state, counters, and timings.
"""

import random


import pytest

from repro.config import CacheConfig
from repro.core.cacp import CACPPolicy
from repro.memory.cache import Cache
from repro.memory.dram import DRAMModel
from repro.memory.l2 import BankedL2
from repro.memory.mshr import MSHRFile
from repro.memory.replacement import LRUPolicy, make_policy
from repro.memory.request import MemRequest
from repro.memory.vector import attach_mirror

CFG = CacheConfig(sets=8, ways=4, line_size=128, mshr_entries=8)


def _req(line_addr, cycle=0.0, critical=False, pc=0x40):
    return MemRequest(
        line_addr=line_addr, pc=pc, warp_key=(0, 0, 0), is_load=True,
        is_critical=critical, cycle=cycle, signature=(pc ^ line_addr) & 0xFF,
    )


def _policy(name):
    if name == "cacp":
        return CACPPolicy(critical_ways=2, total_ways=CFG.ways)
    return make_policy(name)


def _stream(n, seed, footprint_lines=64):
    rng = random.Random(seed)
    lines = [i * CFG.line_size for i in range(footprint_lines)]
    return [
        _req(rng.choice(lines), cycle=float(i), critical=rng.random() < 0.3)
        for i in range(n)
    ]


@pytest.mark.parametrize("policy_name",
                         ["lru", "srrip", "ship", "brrip", "drrip", "cacp"])
def test_mirrored_cache_matches_scalar_twin(policy_name):
    """Same stream, one mirrored cache, one scalar: identical hit/miss
    sequence, counters, and final line state."""
    scalar = Cache(CFG, _policy(policy_name))
    mirrored = Cache(CFG, _policy(policy_name))
    assert attach_mirror(mirrored) is not None

    for req in _stream(600, seed=policy_name):
        assert scalar.access(req) == mirrored.access(req), req.line_addr
    mirrored.mirror.verify(mirrored)

    assert scalar.stats.accesses == mirrored.stats.accesses
    assert scalar.stats.hits == mirrored.stats.hits
    assert scalar.stats.misses == mirrored.stats.misses
    assert scalar.stats.bypasses == mirrored.stats.bypasses
    for s_lines, m_lines in zip(scalar._sets, mirrored._sets):
        for s, m in zip(s_lines, m_lines):
            assert (s.valid, s.tag, s.last_use, s.rrpv,
                    s.filled_by_critical, s.in_critical_partition) == \
                (m.valid, m.tag, m.last_use, m.rrpv,
                 m.filled_by_critical, m.in_critical_partition)


def test_attach_mirror_rejects_unknown_policy_subclass():
    """Subclassed policies may override victim logic the mirror cannot
    replicate; the cache must silently stay scalar."""

    class CustomLRU(LRUPolicy):
        pass

    cache = Cache(CFG, CustomLRU())
    assert attach_mirror(cache) is None
    assert cache.mirror is None
    # The scalar path still works.
    assert cache.access(_req(0)) is False


def test_mirror_directory_probes():
    cache = Cache(CFG, make_policy("lru"))
    mirror = attach_mirror(cache)
    addrs = [i * CFG.line_size for i in (0, 8, 16)]  # same set (8 sets)
    for a in addrs:
        cache.access(_req(a))
    for a in addrs:
        set_idx = cache.config.set_index(a)
        way = mirror.find_way(set_idx, a)
        assert way >= 0
        assert cache._sets[set_idx][way].tag == a
    assert mirror.find_way(0, 999 * CFG.line_size) == -1
    assert mirror.all_hit(addrs)
    assert not mirror.all_hit(addrs + [999 * CFG.line_size])
    mirror.verify(cache)

    cache.invalidate_all()
    assert not mirror.all_hit(addrs[:1])
    assert mirror.find_way(cache.config.set_index(addrs[0]), addrs[0]) == -1
    mirror.verify(cache)


def test_batch_hits_equals_sequential_accesses():
    """The LSU's batched all-hit path must produce the same stats and
    replacement state as per-line ``access`` calls."""
    warm = _stream(200, seed="warm")
    seq = Cache(CFG, make_policy("lru"))
    bat = Cache(CFG, make_policy("lru"))
    attach_mirror(bat)
    for req in warm:
        seq.access(req)
        bat.access(req)

    # Pick a run of resident lines (guaranteed hits).
    resident = [line.tag for lines in bat._sets for line in lines
                if line.valid][:6]
    probe = _req(resident[0], cycle=500.0, critical=True)
    assert bat.batch_hits(resident, probe) is True
    for addr in resident:
        assert seq.access(_req(addr, cycle=500.0, critical=True))

    assert seq.stats.accesses == bat.stats.accesses
    assert seq.stats.hits == bat.stats.hits
    assert seq.stats.critical_hits == bat.stats.critical_hits
    for s_lines, b_lines in zip(seq._sets, bat._sets):
        for s, b in zip(s_lines, b_lines):
            assert (s.tag, s.last_use, s.rrpv, s.reuse_count) == \
                (b.tag, b.last_use, b.rrpv, b.reuse_count)
    bat.mirror.verify(bat)

    # A single non-resident line defuses the whole batch (no side effects).
    before = bat.stats.accesses
    assert bat.batch_hits(resident + [10_000 * CFG.line_size], probe) is False
    assert bat.stats.accesses == before


def test_batch_hits_requires_mirror():
    cache = Cache(CFG, make_policy("lru"))
    assert cache.batch_hits([0], _req(0)) is False


def test_mshr_lookup_batch_matches_sequential():
    a = MSHRFile(entries=8)
    b = MSHRFile(entries=8)
    addrs = [0, 128, 256, 384]
    for m in (a, b):
        for addr in addrs[:3]:
            m.register(addr, completion=100.0)
    seq = [a.lookup(addr, now=1.0) for addr in addrs]
    bat = b.lookup_batch(addrs, now=1.0)
    assert seq == bat == [100.0, 100.0, 100.0, None]
    assert a.merged_misses == b.merged_misses == 3

    # Purge behavior matches too: past completions drop out.
    seq = [a.lookup(addr, now=200.0) for addr in addrs]
    bat = b.lookup_batch(addrs, now=200.0)
    assert seq == bat == [None, None, None, None]
    assert a.merged_misses == b.merged_misses


def test_dram_access_batch_closed_form():
    """One vectorized running-max recurrence == N sequential accesses."""
    for seed in range(3):
        rng = random.Random(seed)
        times = sorted(float(rng.randrange(0, 50)) for _ in range(40))
        seq_model = DRAMModel(latency=100, service_interval=4)
        bat_model = DRAMModel(latency=100, service_interval=4)
        seq = [seq_model.access(t) for t in times]
        bat = bat_model.access_batch(times)
        assert seq == list(bat)
        assert seq_model._next_free == bat_model._next_free
        assert seq_model.accesses == bat_model.accesses
        assert seq_model.busy_cycles == bat_model.busy_cycles
        assert seq_model.queue_cycles == bat_model.queue_cycles


def test_dram_access_batch_empty_and_single():
    model = DRAMModel(latency=100, service_interval=4)
    assert list(model.access_batch([])) == []
    twin = DRAMModel(latency=100, service_interval=4)
    assert list(model.access_batch([5.0])) == [twin.access(5.0)]


def test_l2_bank_helpers_match_scalar():
    l2 = BankedL2(CFG, num_banks=4, latency=20, service_interval=2)
    addrs = [i * CFG.line_size for i in range(10)]
    assert list(l2.bank_of_batch(addrs)) == [l2.bank_of(a) for a in addrs]

    # Skew the bank free times, then compare per-line queue delays.
    l2._bank_next_free = [0.0, 5.0, 17.0, 3.0]
    now = 4.0
    batch = l2.queue_delays_batch(addrs, now)
    for addr, delay in zip(addrs, batch):
        expected = max(0.0, l2._bank_next_free[l2.bank_of(addr)] - now)
        assert delay == expected


def test_rrip_aging_side_effects_mirrored():
    """The mirror's closed-form SRRIP aging must leave line objects in the
    exact state the scalar aging loop produces (twin-compare on a stream
    forcing evictions in one set)."""
    scalar = Cache(CFG, make_policy("srrip"))
    mirrored = Cache(CFG, make_policy("srrip"))
    attach_mirror(mirrored)
    # 12 distinct lines, all landing in set 0 (stride = sets * line_size).
    stride = CFG.sets * CFG.line_size
    for i, n in enumerate([0, 1, 2, 3, 4, 0, 1, 5, 6, 2, 7, 8, 9, 0, 10, 11]):
        req = _req(n * stride, cycle=float(i))
        assert scalar.access(req) == mirrored.access(req)
    for s, m in zip(scalar._sets[0], mirrored._sets[0]):
        assert (s.valid, s.tag, s.rrpv) == (m.valid, m.tag, m.rrpv)
    mirrored.mirror.verify(mirrored)
