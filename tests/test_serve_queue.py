"""Unit tests for the serve job model: spec validation, priority queue,
request coalescing, quotas, and back-pressure.

Everything here is pure data-structure code — no sockets, no asyncio, no
executor processes (see tests/test_serve_http.py for the end-to-end
service tests).
"""

import pytest

from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobQueue,
    JobSpec,
    JobSpecError,
    QueueFull,
    QuotaExceeded,
)


def spec(**overrides):
    payload = {"kind": "run", "workload": "synthetic_imbalance",
               "scheme": "rr", "scale": 0.25}
    payload.update(overrides)
    return JobSpec.from_payload(payload)


class TestJobSpecValidation:
    def test_minimal_run_payload(self):
        s = spec()
        assert s.kind == "run"
        assert s.workloads == ("synthetic_imbalance",)
        assert s.schemes == ("rr",)
        assert s.priority == "interactive"  # auto: single run

    def test_sweep_defaults_to_batch_priority(self):
        s = JobSpec.from_payload({"kind": "sweep",
                                  "workloads": ["synthetic_imbalance"],
                                  "schemes": ["rr", "gto"], "scale": 0.25})
        assert s.priority == "batch"
        assert s.schemes == ("rr", "gto")

    def test_figure_payload(self):
        s = JobSpec.from_payload({"kind": "figure", "figure": 4,
                                  "scale": 0.25})
        assert s.kind == "figure" and s.figure == 4
        assert s.workloads == () and s.schemes == ()

    def test_comma_separated_strings_split(self):
        s = JobSpec.from_payload({"kind": "sweep",
                                  "workloads": "bfs,kmeans",
                                  "schemes": "rr,cawa", "scale": 0.25})
        assert s.workloads == ("bfs", "kmeans")
        assert s.schemes == ("rr", "cawa")

    @pytest.mark.parametrize("payload,fragment", [
        ({"kind": "bogus"}, "kind"),
        ({"kind": "run"}, "workload"),
        ({"kind": "run", "workload": "nope"}, "unknown workload"),
        ({"kind": "run", "workload": "bfs", "scheme": "nope"},
         "unknown scheme"),
        ({"kind": "run", "workload": "bfs", "scale": -1}, "scale"),
        ({"kind": "run", "workload": "bfs", "scale": "big"}, "scale"),
        ({"kind": "run", "workload": "bfs", "priority": "urgent"},
         "priority"),
        ({"kind": "run", "workload": "bfs", "frobnicate": 1}, "unknown job"),
        ({"kind": "run", "workload": "bfs",
          "workloads": ["kmeans"]}, "not both"),
        ({"kind": "run", "workloads": ["bfs", "kmeans"]}, "exactly one"),
        ({"kind": "figure"}, "figure"),
        ({"kind": "figure", "figure": 999}, "no module"),
        ({"kind": "run", "workload": "bfs", "device": ["backend"]},
         "device"),
        ({"kind": "run", "workload": "bfs",
          "device": {"warps": 64}}, "device knob"),
        ({"kind": "run", "workload": "bfs",
          "device": {"backend": "quantum"}}, "invalid device knob"),
    ])
    def test_bad_payloads_rejected(self, payload, fragment):
        with pytest.raises(JobSpecError, match=fragment):
            JobSpec.from_payload(payload)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_payload(["not", "a", "dict"])


class TestFingerprint:
    def test_identical_specs_share_fingerprint(self):
        assert spec().fingerprint() == spec().fingerprint()

    def test_tenant_and_priority_excluded(self):
        # Coalescing is multi-tenant: priority does not change the answer.
        assert (spec(priority="interactive").fingerprint()
                == spec(priority="batch").fingerprint())

    def test_device_knobs_excluded(self):
        # backend/clock/shards are bit-identical by contract.
        a = spec()
        b = spec(device={"backend": "vector"})
        assert a.fingerprint() == b.fingerprint()

    def test_events_flag_included(self):
        # Subscribers of an obs-streaming job are promised obs records.
        assert spec(events=True).fingerprint() != spec().fingerprint()

    def test_scale_and_scheme_included(self):
        base = spec().fingerprint()
        assert spec(scale=0.5).fingerprint() != base
        assert spec(scheme="gto").fingerprint() != base

    def test_sweep_cell_order_irrelevant(self):
        a = JobSpec.from_payload({"kind": "sweep", "workloads": ["bfs"],
                                  "schemes": ["rr", "gto"], "scale": 0.25})
        b = JobSpec.from_payload({"kind": "sweep", "workloads": ["bfs"],
                                  "schemes": ["gto", "rr"], "scale": 0.25})
        assert a.fingerprint() == b.fingerprint()


class TestQueueOrdering:
    def test_fifo_within_class(self):
        q = JobQueue()
        first, _ = q.submit(spec())
        second, _ = q.submit(spec(scheme="gto"))
        assert q.pop().id == first.id
        assert q.pop().id == second.id
        assert q.pop() is None

    def test_interactive_preempts_batch(self):
        q = JobQueue()
        batch, _ = q.submit(spec(priority="batch"))
        inter, _ = q.submit(spec(scheme="gto", priority="interactive"))
        assert q.pop().id == inter.id
        assert q.pop().id == batch.id

    def test_pop_disallow_batch_skips_batch_jobs(self):
        q = JobQueue()
        batch, _ = q.submit(spec(priority="batch"))
        assert q.pop(allow_batch=False) is None
        # The skipped entry must survive for a later permissive pop.
        assert q.pop(allow_batch=True).id == batch.id

    def test_pop_marks_running_and_counts_execution(self):
        q = JobQueue()
        job, _ = q.submit(spec())
        popped = q.pop()
        assert popped.state == RUNNING
        assert q.counters["executions"] == 1

    def test_cancelled_jobs_never_pop(self):
        q = JobQueue()
        job, _ = q.submit(spec())
        q.cancel(job.id)
        assert job.state == CANCELLED
        assert q.pop() is None

    def test_cancel_running_job_rejected(self):
        q = JobQueue()
        job, _ = q.submit(spec())
        q.pop()
        with pytest.raises(JobSpecError, match="running"):
            q.cancel(job.id)


class TestCoalescing:
    def test_identical_submissions_coalesce(self):
        q = JobQueue()
        a, coalesced_a = q.submit(spec(), tenant="alice")
        b, coalesced_b = q.submit(spec(), tenant="bob")
        assert not coalesced_a and coalesced_b
        assert a.id == b.id
        assert a.waiters == 1
        assert q.counters["submitted"] == 1
        assert q.counters["coalesced"] == 1
        # One pop drains the queue: a single execution serves both.
        assert q.pop().id == a.id
        assert q.pop() is None

    def test_coalesce_onto_running_job(self):
        q = JobQueue()
        a, _ = q.submit(spec())
        q.pop()
        b, coalesced = q.submit(spec())
        assert coalesced and b.id == a.id

    def test_no_coalesce_after_terminal(self):
        q = JobQueue()
        a, _ = q.submit(spec())
        q.finish(q.pop(), result={"ok": True})
        assert a.state == DONE
        b, coalesced = q.submit(spec())
        assert not coalesced and b.id != a.id

    def test_interactive_join_escalates_batch_primary(self):
        q = JobQueue()
        batch, _ = q.submit(spec(priority="batch"))
        other, _ = q.submit(spec(scheme="gto", priority="interactive"))
        joined, coalesced = q.submit(spec(priority="interactive"))
        assert coalesced and joined.id == batch.id
        assert batch.priority == "interactive"
        # Escalated job now competes FIFO in the interactive class —
        # `other` was enqueued there first.
        assert q.pop().id == other.id
        assert q.pop().id == batch.id

    def test_coalesced_join_exempt_from_quota(self):
        q = JobQueue(tenant_quota=1)
        q.submit(spec(), tenant="alice")
        # Same tenant, identical spec: joins instead of being rejected.
        _, coalesced = q.submit(spec(), tenant="alice")
        assert coalesced
        # A distinct spec from the same tenant is over quota.
        with pytest.raises(QuotaExceeded):
            q.submit(spec(scheme="gto"), tenant="alice")


class TestAdmissionControl:
    def test_tenant_quota_rejects(self):
        q = JobQueue(tenant_quota=2)
        q.submit(spec(), tenant="alice")
        q.submit(spec(scheme="gto"), tenant="alice")
        with pytest.raises(QuotaExceeded):
            q.submit(spec(scheme="cawa"), tenant="alice")
        assert q.counters["rejected_quota"] == 1
        # Other tenants are unaffected.
        q.submit(spec(scheme="cawa"), tenant="bob")

    def test_queue_full_rejects(self):
        q = JobQueue(max_queue=2, tenant_quota=100)
        q.submit(spec(), tenant="a")
        q.submit(spec(scheme="gto"), tenant="b")
        with pytest.raises(QueueFull):
            q.submit(spec(scheme="cawa"), tenant="c")
        assert q.counters["rejected_queue_full"] == 1

    def test_running_jobs_do_not_count_against_queue_bound(self):
        q = JobQueue(max_queue=1, tenant_quota=100)
        q.submit(spec(), tenant="a")
        q.pop()  # now running, queue empty again
        q.submit(spec(scheme="gto"), tenant="b")  # fits


class TestProgressChannel:
    """The JSONL progress file bridging executor processes and the server."""

    def test_writer_reader_round_trip(self, tmp_path):
        from repro.serve.progress import ProgressWriter, read_new_records

        path = tmp_path / "spool" / "job.progress.jsonl"
        writer = ProgressWriter(path)
        writer.emit("started", pid=123)
        writer.emit("cell", workload="bfs", cycles=10.0)
        records, offset = read_new_records(path, 0)
        assert [r["kind"] for r in records] == ["started", "cell"]
        # Tailing resumes from the returned offset.
        writer.emit("finished")
        writer.close()
        more, _ = read_new_records(path, offset)
        assert [r["kind"] for r in more] == ["finished"]

    def test_partial_trailing_line_left_for_next_poll(self, tmp_path):
        from repro.serve.progress import read_new_records

        path = tmp_path / "p.jsonl"
        path.write_bytes(b'{"kind": "started"}\n{"kind": "trunc')
        records, offset = read_new_records(path, 0)
        assert [r["kind"] for r in records] == ["started"]
        # The writer finishes the line; the next poll picks it up whole.
        with open(path, "ab") as handle:
            handle.write(b'ated"}\n')
        more, _ = read_new_records(path, offset)
        assert [r["kind"] for r in more] == ["truncated"]

    def test_missing_file_reads_empty(self, tmp_path):
        from repro.serve.progress import read_new_records

        records, offset = read_new_records(tmp_path / "absent.jsonl", 0)
        assert records == [] and offset == 0


class TestLifecycle:
    def test_finish_success(self):
        q = JobQueue()
        job, _ = q.submit(spec())
        q.finish(q.pop(), result={"cycles": 1.0})
        assert job.state == DONE
        assert job.result == {"cycles": 1.0}
        assert q.counters["done"] == 1

    def test_finish_failure(self):
        q = JobQueue()
        job, _ = q.submit(spec())
        q.finish(q.pop(), error="boom")
        assert job.state == FAILED and job.error == "boom"
        assert q.counters["failed"] == 1

    def test_evict_finished_keeps_newest(self):
        q = JobQueue()
        ids = []
        for scheme in ("rr", "gto", "cawa"):
            job, _ = q.submit(spec(scheme=scheme))
            ids.append(job.id)
            q.finish(q.pop(), result={})
        assert q.evict_finished(keep=1) == 2
        assert set(q.jobs) == {ids[-1]}

    def test_stats_shape(self):
        q = JobQueue()
        q.submit(spec(), tenant="alice")
        stats = q.stats()
        assert stats["queued"] == 1
        assert stats["tenants"] == {"alice": 1}
        assert stats["counters"]["submitted"] == 1

    def test_to_dict_round_trip_fields(self):
        q = JobQueue()
        job, _ = q.submit(spec())
        d = job.to_dict()
        assert d["state"] == QUEUED
        assert d["kind"] == "run"
        assert d["has_result"] is False
        assert "progress" not in d
        assert "progress" in job.to_dict(with_progress=True)
