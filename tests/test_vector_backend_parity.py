"""Golden bit-identity: the vector backend must exactly match python.

``GPUConfig.backend='vector'`` swaps the per-cycle scheduling machinery —
warp readiness scans, scoreboard probes, cache tag matching and victim
selection, the device cycle loop — for numpy batch equivalents
(:class:`repro.sm.vector.VectorSM`, :class:`repro.memory.vector.TagMirror`).
Those equivalents are *replications*, not approximations: every issue,
cache access, and DRAM trip must land on exactly the same cycle, so cycle
counts, instruction totals, the full cache/DRAM counter set, per-warp
execution times, and the observability event stream are compared
bit-for-bit against the scalar engine.

The grid covers {rr, gto, caws, cawa} x {execute, trace} x {cycle, skip}.
A fast subset runs in tier 1; the full grid is marked ``slow``.

``cycles_skipped``/``skip_jumps`` are excluded (diagnostic jump telemetry
legitimately differs between the device loops), as is host wall time.
"""

import pytest

from repro import trace as trace_mod
from repro.config import GPUConfig
from repro.core.cawa import apply_scheme
from repro.experiments.runner import build_oracle, clear_cache, run_scheme
from repro.obs import StallAccounting, record_events, sort_events
from repro.workloads import workload_names

GRID_SCHEMES = ["rr", "gto", "caws", "cawa"]
FRONTENDS = ["execute", "trace"]
CLOCKS = ["cycle", "skip"]
SCALE = 0.25

_PROGRAMS = {}


def _program(workload, scale=SCALE):
    """Record each workload once per session; both backends replay it."""
    key = (workload, scale)
    if key not in _PROGRAMS:
        _, program = trace_mod.record_workload(
            workload, scale=scale, config=GPUConfig.default_sim()
        )
        _PROGRAMS[key] = program
    return _PROGRAMS[key]


def _signature(result):
    """Everything that must not drift between the two backends."""
    return (
        result.cycles,
        result.warp_instructions,
        result.thread_instructions,
        result.l1_stats.accesses,
        result.l1_stats.hits,
        result.l1_stats.misses,
        result.l1_stats.bypasses,
        result.l1_stats.critical_hits,
        result.l2_stats.accesses,
        result.l2_stats.misses,
        result.dram_accesses,
        tuple(tuple(block.warp_execution_times()) for block in result.blocks),
    )


def _run(workload, scheme, frontend, clock, backend, scale=SCALE):
    base = GPUConfig.default_sim().with_clock(clock).with_backend(backend)
    if frontend == "execute":
        if scheme == "caws":
            clear_cache()
        return run_scheme(workload, scheme, scale=scale, config=base,
                          use_cache=False, persistent=False)
    cfg = apply_scheme(base, scheme)
    oracle = None
    if cfg.scheduler_name == "caws":
        clear_cache()
        oracle = build_oracle(workload, scale, GPUConfig.default_sim())
    return trace_mod.replay_program(
        _program(workload, scale), cfg, scheme=scheme, oracle=oracle
    )[-1]


def _assert_parity(workload, scheme, frontend, clock="cycle", scale=SCALE):
    python = _run(workload, scheme, frontend, clock, "python", scale)
    vector = _run(workload, scheme, frontend, clock, "vector", scale)
    assert _signature(python) == _signature(vector), (
        f"python/vector divergence on {workload} x {scheme} "
        f"({frontend}, {clock})"
    )


class TestVectorParityFast:
    """Tier-1 subset: one Sens workload across the grid schemes."""

    @pytest.mark.parametrize("scheme", GRID_SCHEMES)
    def test_execute_frontend(self, scheme):
        _assert_parity("synthetic_imbalance", scheme, "execute")

    @pytest.mark.parametrize("scheme", ["rr", "cawa"])
    def test_trace_frontend(self, scheme):
        _assert_parity("synthetic_imbalance", scheme, "trace")

    @pytest.mark.parametrize("clock", CLOCKS)
    def test_both_clocks(self, clock):
        # The vector backend has its own per-cycle device loop but shares
        # the skip loop; both must agree with the scalar engine.
        _assert_parity("synthetic_memstress", "gto", "execute", clock)

    def test_barrier_workload(self):
        # kmeans exercises block-wide barriers: a barrier released during
        # an issue must re-expose warps to the remaining scheduler slots
        # of the same cycle (VectorSM's due-mask recompute).
        _assert_parity("kmeans", "cawa", "execute", scale=0.125)

    def test_divergent_workload(self):
        _assert_parity("synthetic_divergence", "gto", "execute")

    def test_dispatch_wave_workload(self):
        # strcltr has more blocks than the device can co-host, so commits
        # trigger mid-run dispatches — the only cross-SM wake source, and
        # the path that appends to the vector backend's warp-state store
        # mid-launch.
        _assert_parity("strcltr_mid", "rr", "execute", scale=1.0)

    def test_cacp_cache_paths(self):
        # cawa at a memory-heavy cell drives the CACP mirror kind:
        # partitioned victim search, invalid-anywhere fallback, bypasses.
        _assert_parity("synthetic_memstress", "cawa", "execute")

    def test_obs_event_stream_identical(self):
        """The observability stream is part of the bit-identity contract.

        With events on, the LSU's batched-hit fast path must disarm (the
        per-access emits need per-line requests), so this also pins the
        fallback path.
        """
        streams = {}
        results = {}
        for backend in ("python", "vector"):
            cfg = GPUConfig.default_sim().with_backend(backend)
            result, bus = record_events(
                "bfs", "cawa", scale=SCALE, config=cfg,
                collectors=(StallAccounting(),),
            )
            assert result.extra["events_recorded"] == bus.emitted > 0
            streams[backend] = sort_events(bus.events())
            results[backend] = result
        assert _signature(results["python"]) == _signature(results["vector"])
        assert streams["python"] == streams["vector"]


@pytest.mark.slow
class TestVectorParityFullGrid:
    """The full golden grid: workload x scheme x frontend x clock."""

    @pytest.mark.parametrize("clock", CLOCKS)
    @pytest.mark.parametrize("frontend", FRONTENDS)
    @pytest.mark.parametrize("workload", workload_names())
    @pytest.mark.parametrize("scheme", GRID_SCHEMES)
    def test_grid_cell(self, workload, scheme, frontend, clock):
        _assert_parity(workload, scheme, frontend, clock)


def test_backend_recorded_in_result():
    result = run_scheme("synthetic_imbalance", "gto", scale=SCALE,
                        config=GPUConfig.default_sim().with_backend("vector"),
                        use_cache=False, persistent=False)
    assert result.backend == "vector"
    assert result.to_dict()["backend"] == "vector"
