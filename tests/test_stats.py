"""Tests for the stats/analysis modules (disparity, reuse, accuracy, report)."""

import numpy as np
import pytest

from repro.isa.kernel import KernelBuilder
from repro.memory.cache import CacheStats
from repro.memory.request import MemRequest, make_signature
from repro.simt.block import ThreadBlock
from repro.simt.warp import Warp
from repro.stats.counters import RunResult, merge_cache_stats
from repro.stats.disparity import (
    block_disparity,
    critical_warp_of,
    max_block_disparity,
    mean_block_disparity,
    memory_stall_share,
    scheduler_stall_share,
    warp_time_profile,
)
from repro.stats.report import format_table
from repro.stats.reuse import BUCKETS, ReuseDistanceProfiler, ReuseProfile


def make_block(times):
    b = KernelBuilder("t")
    b.nop()
    kernel = b.build()
    block = ThreadBlock(0, len(times) * 32, 1, kernel, 32)
    block.dispatch_cycle = 0.0
    for i, t in enumerate(times):
        warp = Warp(i, block, 32, 2, 1, dynamic_id=i)
        block.warps.append(warp)
        warp.start_cycle = 0.0
        warp.mark_finished(t)
    return block


def req(line_addr, pc=0, critical=False):
    return MemRequest(line_addr, pc, (0, 0, 0), True, critical, 0.0,
                      make_signature(pc, line_addr))


class TestDisparity:
    def test_profile_sorted(self):
        block = make_block([30.0, 10.0, 20.0])
        assert warp_time_profile(block) == [10.0, 20.0, 30.0]

    def test_disparity_relative_to_max(self):
        block = make_block([50.0, 100.0])
        assert block_disparity(block) == pytest.approx(0.5)

    def test_disparity_relative_to_min(self):
        block = make_block([50.0, 100.0])
        assert block_disparity(block, relative_to="min") == pytest.approx(1.0)

    def test_single_warp_block_is_none(self):
        block = make_block([10.0])
        assert block_disparity(block) is None

    def test_bad_relative_mode(self):
        block = make_block([1.0, 2.0])
        with pytest.raises(ValueError):
            block_disparity(block, relative_to="median")

    def test_max_and_mean_over_run(self):
        r = RunResult("k", "rr", 100, 1, 1, CacheStats(), CacheStats(),
                      blocks=[make_block([10, 20]), make_block([10, 40])])
        assert max_block_disparity(r) == pytest.approx(0.75)
        assert mean_block_disparity(r) == pytest.approx((0.5 + 0.75) / 2)

    def test_critical_warp_is_slowest(self):
        block = make_block([10.0, 99.0, 50.0])
        assert critical_warp_of(block).warp_id_in_block == 1

    def test_stall_shares(self):
        block = make_block([100.0])
        warp = block.warps[0]
        warp.mem_stall_cycles = 40.0
        warp.sched_stall_cycles = 10.0
        assert memory_stall_share(warp) == pytest.approx(0.4)
        assert scheduler_stall_share(warp) == pytest.approx(0.1)


class TestReuseDistance:
    def test_first_touch_is_not_rereference(self):
        profiler = ReuseDistanceProfiler()
        profiler.on_access(req(0), hit=False, line=None)
        assert profiler.non_critical.references == 1
        assert profiler.non_critical.rereferences == 0

    def test_immediate_reuse_distance_zero(self):
        profiler = ReuseDistanceProfiler()
        profiler.on_access(req(0), False, None)
        profiler.on_access(req(0), True, None)
        assert profiler.non_critical.histogram[0] == 1

    def test_stack_distance_counts_distinct_lines(self):
        profiler = ReuseDistanceProfiler()
        profiler.on_access(req(0), False, None)
        for i in range(1, 10):
            profiler.on_access(req(i * 128), False, None)
        profiler.on_access(req(0), True, None)
        # 9 distinct lines in between: falls into the [8, 16) bucket.
        assert profiler.non_critical.histogram[1] == 1

    def test_critical_and_noncritical_separated(self):
        profiler = ReuseDistanceProfiler()
        profiler.on_access(req(0, critical=True), False, None)
        profiler.on_access(req(0, critical=True), True, None)
        profiler.on_access(req(128), False, None)
        assert profiler.critical.rereferences == 1
        assert profiler.non_critical.rereferences == 0

    def test_fraction_beyond_capacity(self):
        profile = ReuseProfile()
        profile.record(2)      # bucket [0, 8)
        profile.record(300)    # bucket [256, 512)
        profile.record(10_000)  # open-ended bucket
        assert profile.fraction_beyond(128) == pytest.approx(2 / 3)
        assert profile.fraction_beyond(1024) == pytest.approx(1 / 3)

    def test_per_pc_profiles(self):
        profiler = ReuseDistanceProfiler()
        profiler.on_access(req(0, pc=3), False, None)
        profiler.on_access(req(0, pc=5), True, None)
        # Reuse is attributed to the PC that *filled* the line.
        assert profiler.by_pc[3].rereferences == 1


class TestCountersAndReport:
    def test_merge_cache_stats(self):
        a = CacheStats(accesses=10, hits=5, misses=5, evictions=2)
        b = CacheStats(accesses=4, hits=4, critical_accesses=3, critical_hits=2)
        merged = merge_cache_stats([a, b])
        assert merged.accesses == 14
        assert merged.hits == 9
        assert merged.critical_hit_rate == pytest.approx(2 / 3)

    def test_run_result_metrics(self):
        stats = CacheStats(accesses=100, hits=60, misses=40)
        r = RunResult("k", "rr", cycles=1000, thread_instructions=4000,
                      warp_instructions=200, l1_stats=stats, l2_stats=CacheStats())
        assert r.ipc == 4.0
        assert r.l1_mpki == 10.0
        assert r.l1_hit_rate == 0.6

    def test_speedup_over(self):
        stats = CacheStats()
        a = RunResult("k", "rr", 1000, 4000, 1, stats, stats)
        b = RunResult("k", "gto", 500, 4000, 1, stats, stats)
        assert b.speedup_over(a) == 2.0

    def test_format_table_alignment(self):
        text = format_table(["name", "ipc"], [["bfs", 1.234567], ["kmeans", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in text
        assert lines[0].index("ipc") == lines[2].index("1.235")

    def test_zero_cycles_safe(self):
        r = RunResult("k", "rr", 0, 0, 0, CacheStats(), CacheStats())
        assert r.ipc == 0.0
        assert r.l1_mpki == 0.0
