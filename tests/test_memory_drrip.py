"""Tests for BRRIP and DRRIP (set-dueling adaptive insertion)."""

import pytest

from repro.config import CacheConfig, GPUConfig
from repro.memory.cache import Cache
from repro.memory.replacement import (
    BRRIPPolicy,
    DRRIPPolicy,
    RRPV_LONG,
    RRPV_MAX,
    make_policy,
)
from repro.memory.request import MemRequest, make_signature


def req(line_addr, pc=0):
    return MemRequest(line_addr, pc, (0, 0, 0), True, False, 0.0,
                      make_signature(pc, line_addr))


class TestBRRIP:
    def test_mostly_distant_insertion(self):
        policy = BRRIPPolicy(long_interval=4)
        cfg = CacheConfig(sets=1, ways=8, line_size=128)
        cache = Cache(cfg, policy)
        for i in range(4):
            cache.access(req(i * 128))
        rrpvs = [cache.lookup(i * 128).rrpv for i in range(4)]
        assert rrpvs.count(RRPV_MAX) == 3
        assert rrpvs.count(RRPV_LONG) == 1  # every 4th fill

    def test_hit_promotes(self):
        policy = BRRIPPolicy()
        cfg = CacheConfig(sets=1, ways=2, line_size=128)
        cache = Cache(cfg, policy)
        cache.access(req(0))
        cache.access(req(0))
        assert cache.lookup(0).rrpv == 0


class TestDRRIP:
    def test_leader_set_assignment(self):
        policy = DRRIPPolicy(sets=8, leader_sets=2)
        assert policy._insertion_policy(0) is policy._srrip
        assert policy._insertion_policy(7) is policy._brrip

    def test_follower_uses_psel_winner(self):
        policy = DRRIPPolicy(sets=8, leader_sets=2)
        policy.psel = policy._psel_max  # SRRIP missed a lot -> BRRIP wins
        assert policy._insertion_policy(4) is policy._brrip
        policy.psel = 0
        assert policy._insertion_policy(4) is policy._srrip

    def test_psel_trains_on_leader_misses(self):
        policy = DRRIPPolicy(sets=8, leader_sets=2, line_size=128)
        cfg = CacheConfig(sets=8, ways=2, line_size=128)
        cache = Cache(cfg, policy)
        start = policy.psel
        cache.access(req(0))  # set 0: SRRIP leader -> PSEL++
        assert policy.psel == start + 1
        cache.access(req(7 * 128))  # set 7: BRRIP leader -> PSEL--
        assert policy.psel == start

    def test_psel_saturates(self):
        policy = DRRIPPolicy(sets=8, leader_sets=2, psel_bits=2)
        for _ in range(10):
            policy.on_fill(type("L", (), {"rrpv": 0})(), req(0))
        assert policy.psel == policy._psel_max

    def test_rejects_too_many_leaders(self):
        with pytest.raises(ValueError):
            DRRIPPolicy(sets=4, leader_sets=3)

    def test_thrash_pattern_flips_to_brrip(self):
        # A cyclic working set larger than the cache defeats SRRIP; the
        # duel must steer PSEL toward BRRIP (values above the midpoint).
        policy = DRRIPPolicy(sets=8, leader_sets=4, line_size=128)
        cfg = CacheConfig(sets=8, ways=2, line_size=128)
        cache = Cache(cfg, policy)
        for _ in range(20):
            for i in range(32):  # 32 lines over 16-line capacity
                cache.access(req(i * 128))
        assert policy.psel > policy._psel_max // 2

    def test_make_policy_and_gpu_wiring(self):
        assert isinstance(make_policy("brrip"), BRRIPPolicy)
        assert isinstance(make_policy("drrip"), DRRIPPolicy)
        from repro import GPU
        gpu = GPU(GPUConfig.default_sim().with_l1d_policy("drrip"))
        policy = gpu.sms[0].l1d.policy
        assert isinstance(policy, DRRIPPolicy)
        assert policy.sets == gpu.config.l1d.sets


class TestDRRIPEndToEnd:
    def test_runs_a_workload(self):
        from repro import GPU
        from repro.workloads import make_workload

        gpu = GPU(GPUConfig.default_sim().with_l1d_policy("drrip"))
        result = make_workload("synthetic_memstress").run(gpu)
        assert result.cycles > 0
