"""Tests for repro.config (Table 1 parameters and validation)."""

import pytest

from repro.config import CacheConfig, GPUConfig
from repro.errors import ConfigError


class TestCacheConfig:
    def test_size_bytes(self):
        cfg = CacheConfig(sets=8, ways=16, line_size=128)
        assert cfg.size_bytes == 16 * 1024  # the paper's 16KB L1D

    def test_set_index_wraps(self):
        cfg = CacheConfig(sets=8, ways=4, line_size=128)
        assert cfg.set_index(0) == 0
        assert cfg.set_index(128) == 1
        assert cfg.set_index(128 * 8) == 0

    def test_line_address_alignment(self):
        cfg = CacheConfig(sets=8, ways=4, line_size=128)
        assert cfg.line_address(130) == 128
        assert cfg.line_address(127) == 0
        assert cfg.line_address(128) == 128

    def test_rejects_nonpositive_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(sets=0, ways=4)
        with pytest.raises(ConfigError):
            CacheConfig(sets=-8, ways=4)

    def test_non_power_of_two_sets_allowed_for_banked_l2(self):
        cfg = CacheConfig(sets=384, ways=16, line_size=128)
        assert cfg.size_bytes == 768 * 1024

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(sets=8, ways=4, line_size=100)

    def test_rejects_bad_critical_ways(self):
        with pytest.raises(ConfigError):
            CacheConfig(sets=8, ways=4, critical_ways=5)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigError):
            CacheConfig(sets=8, ways=0)


class TestGPUConfig:
    def test_fermi_table1_values(self):
        cfg = GPUConfig.fermi_gtx480()
        assert cfg.num_sms == 15
        assert cfg.max_warps_per_sm == 48
        assert cfg.max_blocks_per_sm == 8
        assert cfg.num_schedulers_per_sm == 2
        assert cfg.registers_per_sm == 32768
        assert cfg.shared_mem_per_sm == 48 * 1024
        assert cfg.warp_size == 32
        assert cfg.l1d.size_bytes == 16 * 1024
        assert cfg.l1d.sets == 8 and cfg.l1d.ways == 16
        assert cfg.l2_latency == 120
        assert cfg.dram_latency == 220
        assert cfg.l2.size_bytes == 768 * 1024  # Table 1: 768KB unified L2
        assert cfg.l2_banks == 6

    def test_default_sim_preserves_l1_geometry(self):
        cfg = GPUConfig.default_sim()
        assert cfg.l1d.sets == 8
        assert cfg.l1d.ways == 16
        assert cfg.l1d.line_size == 128
        assert cfg.num_schedulers_per_sm == 2

    def test_with_scheduler(self):
        cfg = GPUConfig.default_sim().with_scheduler("gto")
        assert cfg.scheduler_name == "gto"

    def test_with_cacp_default_half_ways(self):
        cfg = GPUConfig.default_sim().with_cacp(True)
        assert cfg.use_cacp
        assert cfg.l1d.critical_ways == cfg.l1d.ways // 2

    def test_with_cacp_disable(self):
        cfg = GPUConfig.default_sim().with_cacp(True).with_cacp(False)
        assert not cfg.use_cacp
        assert cfg.l1d.critical_ways == 0

    def test_with_l1d_policy(self):
        cfg = GPUConfig.default_sim().with_l1d_policy("ship")
        assert cfg.l1d_policy == "ship"

    def test_rejects_bad_warp_size(self):
        with pytest.raises(ConfigError):
            GPUConfig(warp_size=33)

    def test_rejects_zero_sms(self):
        with pytest.raises(ConfigError):
            GPUConfig(num_sms=0)


class TestBackendKnob:
    """``backend`` selects the hot-path engine; results are bit-identical
    (tests/test_vector_backend_parity.py), so like clock/shards/events it
    must not perturb the result-cache fingerprint."""

    def test_default_is_python(self):
        assert GPUConfig.default_sim().backend == "python"

    def test_with_backend(self):
        cfg = GPUConfig.default_sim().with_backend("vector")
        assert cfg.backend == "vector"
        assert cfg.with_backend("python").backend == "python"

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            GPUConfig.default_sim().with_backend("fortran")

    def test_backend_excluded_from_fingerprint(self):
        base = GPUConfig.default_sim()
        assert base.fingerprint() == base.with_backend("vector").fingerprint()
