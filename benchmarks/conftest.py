"""Benchmark-suite configuration.

Every bench regenerates one of the paper's tables or figures via the
experiment harness, measures the wall time of doing so with
pytest-benchmark (a single round — these are simulations, not microbenches),
prints the rendered table so ``pytest benchmarks/ --benchmark-only -s``
doubles as the paper-reproduction report, and asserts the figure's
qualitative *shape* (who wins, roughly by how much).

Simulation results for identical (workload, scheme, scale) cells are
memoized process-wide by :mod:`repro.experiments.runner`, so the full suite
costs one sweep of the (workload x scheme) grid.
"""

import pytest

#: Scale factor for all benches; 1.0 = the sizes used in EXPERIMENTS.md.
BENCH_SCALE = 1.0


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
