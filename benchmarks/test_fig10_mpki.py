"""Figure 10 — L1D MPKI per scheduler.

Paper: CAWA reduces miss rates the most overall; kmeans MPKI falls 26.2%;
a few applications trade more misses for better critical-warp latency.
Shape asserted: CAWA cuts kmeans MPKI substantially versus RR and achieves
the lowest (or tied-lowest) mean MPKI over the Sens set.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig10
from repro.workloads import SENS_WORKLOADS


def test_fig10_mpki(benchmark):
    data = run_once(benchmark, fig10.run, scale=BENCH_SCALE)
    print("\n" + fig10.render(data))

    assert data[("kmeans", "cawa")] < 0.8 * data[("kmeans", "rr")], (
        "CAWA must cut kmeans' MPKI substantially (paper: -26.2%)"
    )
    means = {
        scheme: sum(data[(n, scheme)] for n in SENS_WORKLOADS) / len(SENS_WORKLOADS)
        for scheme in fig10.SCHEMES
    }
    assert means["cawa"] < means["rr"], "CAWA must reduce mean Sens MPKI vs RR"
    assert means["cawa"] < means["two_level"], "CAWA must beat 2-level on MPKI"
