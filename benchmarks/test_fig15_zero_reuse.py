"""Figure 15 — critical-warp lines evicted without any reuse.

Paper: 44.3% of critical-warp-filled lines die unreferenced in the
baseline; CAWA's partition protection reduces the waste.  Shape asserted:
the baseline wastes a visible fraction and CAWA reduces the mean fraction.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig15
from repro.workloads import SENS_WORKLOADS


def test_fig15_zero_reuse(benchmark):
    data = run_once(benchmark, fig15.run, scale=BENCH_SCALE)
    print("\n" + fig15.render(data))
    rr_mean = sum(data[(n, "rr")] for n in SENS_WORKLOADS) / len(SENS_WORKLOADS)
    cawa_mean = sum(data[(n, "cawa")] for n in SENS_WORKLOADS) / len(SENS_WORKLOADS)
    assert rr_mean > 0.1, "baseline must waste critical-warp fills visibly"
    assert cawa_mean < rr_mean, "CAWA must reduce zero-reuse critical lines"
