"""Figure 9 — the headline IPC comparison.

Paper: on Sens applications CAWA +23%, GTO +16%, 2-level -2% over RR;
kmeans speeds up 3.13x under CAWA (the largest gain).  Shape asserted:
CAWA's Sens mean beats GTO's and the 2-level scheduler's, every scheme's
Sens mean beats 1.0 except possibly 2-level, and kmeans is CAWA's largest
Sens speedup.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig09
from repro.workloads import SENS_WORKLOADS


def test_fig09_performance(benchmark):
    data = run_once(benchmark, fig09.run, scale=BENCH_SCALE)
    print("\n" + fig09.render(data))
    summary = fig09.summarize(data)

    cawa = summary[("Sens", "cawa")]
    gto = summary[("Sens", "gto")]
    two_level = summary[("Sens", "two_level")]
    assert cawa > 1.1, "CAWA must improve Sens applications"
    assert gto > 1.05, "GTO must improve Sens applications"
    assert cawa > gto, "CAWA must outperform GTO on Sens (paper: 23% vs 16%)"
    assert cawa > two_level, "CAWA must outperform the 2-level scheduler"
    assert gto > two_level, "GTO must outperform the 2-level scheduler"

    # kmeans is the flagship: CAWA's largest Sens speedup.
    kmeans = data[("kmeans", "cawa")]
    assert kmeans == max(data[(n, "cawa")] for n in SENS_WORKLOADS)
    assert kmeans > 1.5, "kmeans must speed up substantially under CAWA"
