"""Tables 1 & 2 — configuration and workload inventory reproduction."""

from conftest import run_once

from repro.experiments import tables


def test_table1_config(benchmark):
    text = run_once(benchmark, tables.table1)
    print("\n" + text)
    assert "15" in text  # SM count
    assert "48" in text  # warps per SM
    assert "16KB" in text and "768KB" in text
    assert "120 cycles" in text and "220 cycles" in text


def test_table2_workloads(benchmark):
    text = run_once(benchmark, tables.table2)
    print("\n" + text)
    for name in ("bfs", "kmeans", "needle", "srad_1", "tpacf"):
        assert name in text
    rows = [line for line in text.splitlines() if "|" in line][1:]  # drop header
    assert len(rows) == 12  # Table 2 lists twelve benchmark rows
    assert sum(1 for r in rows if r.rstrip().endswith("Non-sens")) == 5
    assert sum(1 for r in rows if not r.rstrip().endswith("Non-sens")) == 7
