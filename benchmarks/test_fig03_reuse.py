"""Figure 3 — reuse distance of critical-warp lines in bfs.

Paper: >60% of critical-warp reusable blocks are evicted before their
re-reference in a 16KB cache.  Shape asserted: a meaningful fraction of
critical re-references exceed the analysis-cache capacity, and the per-PC
profiles (Figure 8 companion) show heterogeneous reuse.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig03


def test_fig03_reuse_distance(benchmark):
    data = run_once(benchmark, fig03.run, scale=BENCH_SCALE)
    print("\n" + fig03.render(data))
    assert data["critical_evicted_before_reuse"] >= 0.0
    assert sum(data["critical_histogram"]) > 0, "critical reuse must be observed"
    # Figure 8 companion: reuse behaviour differs across memory PCs.
    fractions = [v["beyond_capacity"] for v in data["per_pc"].values()]
    assert len(fractions) >= 3, "bfs has several memory instructions"
    assert max(fractions) > min(fractions), "per-PC reuse must be heterogeneous"
