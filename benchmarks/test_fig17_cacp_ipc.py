"""Figure 17 — IPC with CACP added to each warp scheduler.

Paper: CACP adds 2%-16.5% IPC to the criticality-oblivious schedulers and
the coordinated CAWA performs best.  Shape asserted: CACP's mean gain is
positive for at least one baseline scheduler, non-catastrophic for all,
and the full CAWA achieves the best mean IPC among the CACP pairings.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig16, fig17
from repro.workloads import SENS_WORKLOADS


def test_fig17_cacp_ipc(benchmark):
    data = run_once(benchmark, fig17.run, scale=BENCH_SCALE)
    print("\n" + fig17.render(data))
    gains = fig17.cacp_gains(data)
    assert max(gains.values()) > 0.0, "CACP must help at least one scheduler"
    assert min(gains.values()) > -0.10, "CACP must never be catastrophic"

    def mean_ipc(scheme):
        return sum(data[(n, scheme)] for n in SENS_WORKLOADS) / len(SENS_WORKLOADS)

    cacp_schemes = [cacp for _, cacp in fig16.PAIRINGS]
    best = max(cacp_schemes, key=mean_ipc)
    assert best == "cawa", "the coordinated design must be the best pairing"
