"""Ablation: L1D replacement policies under a fixed scheduler.

Not a paper figure — compares the replacement-policy zoo (LRU, SRRIP,
DRRIP, SHiP) plus CACP's bypass extension on the cache-sensitive flagship
workload, isolating the cache axis from the scheduling axis (scheduler
fixed to GTO, as Section 5.4 does when studying CACP in isolation).
"""

from conftest import run_once

from repro import GPU, GPUConfig, apply_scheme
from repro.stats.report import format_table
from repro.workloads import make_workload

WORKLOAD = "kmeans"
POLICIES = ["lru", "srrip", "drrip", "ship"]


def _run_policy(policy):
    config = GPUConfig.default_sim().with_scheduler("gto").with_l1d_policy(policy)
    gpu = GPU(config)
    return make_workload(WORKLOAD).run(gpu, scheme=f"gto/{policy}")


def test_ablation_l1_policies(benchmark):
    def sweep():
        return {policy: _run_policy(policy) for policy in POLICIES}

    results = run_once(benchmark, sweep)
    rows = [
        [policy, f"{r.ipc:.2f}", f"{r.l1_hit_rate:.1%}", f"{r.l1_mpki:.2f}"]
        for policy, r in results.items()
    ]
    print(f"\nAblation: L1D policy under GTO on {WORKLOAD}\n"
          + format_table(["policy", "IPC", "L1 hit", "MPKI"], rows))
    ipcs = [r.ipc for r in results.values()]
    assert min(ipcs) > 0
    # All policies must be in a sane band of each other on this workload.
    assert max(ipcs) / min(ipcs) < 3.0


def test_ablation_bypass_extension(benchmark):
    def run_both():
        a = make_workload("synthetic_memstress", passes=64).run(
            GPU(apply_scheme(GPUConfig.default_sim(), "cawa")), scheme="cawa"
        )
        b = make_workload("synthetic_memstress", passes=64).run(
            GPU(apply_scheme(GPUConfig.default_sim(), "cawa+bypass")),
            scheme="cawa+bypass",
        )
        return a, b

    plain, bypass = run_once(benchmark, run_both)
    print(
        f"\nAblation: L1 bypass extension on a pure stream — "
        f"cawa evictions={plain.l1_stats.evictions}, "
        f"cawa+bypass evictions={bypass.l1_stats.evictions} "
        f"(bypasses={bypass.l1_stats.bypasses})"
    )
    assert bypass.l1_stats.bypasses > 0, "bypass must fire on a pure stream"
    assert bypass.l1_stats.evictions < plain.l1_stats.evictions


def test_ablation_mshr_reserve_extension(benchmark):
    """Critical-MSHR reservation: measured as a *negative* result.

    Reserving MLP for criticality verdicts that flap around the block
    median idles entries and costs throughput on kmeans; the bench records
    the comparison and asserts the extension stays within a sane band (it
    must not deadlock or collapse).
    """

    def run_both():
        a = make_workload(WORKLOAD).run(
            GPU(apply_scheme(GPUConfig.default_sim(), "cawa")), scheme="cawa"
        )
        b = make_workload(WORKLOAD).run(
            GPU(apply_scheme(GPUConfig.default_sim(), "cawa+mshr")),
            scheme="cawa+mshr",
        )
        return a, b

    plain, reserved = run_once(benchmark, run_both)
    print(
        f"\nAblation: MSHR reserve on {WORKLOAD} — "
        f"cawa IPC={plain.ipc:.2f}, cawa+mshr IPC={reserved.ipc:.2f}"
    )
    assert reserved.ipc > 0.5 * plain.ipc
