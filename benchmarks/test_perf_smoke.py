"""Simulator-throughput smoke benchmark (host performance, not paper data).

Records **simulated cycles per host CPU second** for the event-driven issue
core on the bfs x cawa cell (the ISSUE's reference cell), the
event-vs-scan core speedup, the trace-replay-vs-execute speedup, and the
skip-clock-vs-cycle-clock speedup, all into pytest-benchmark's
``extra_info`` so ``--benchmark-json`` output can be tracked across
commits.  The skip-clock benchmarks additionally write their numbers to
``BENCH_pr4.json`` at the repo root (override with ``BENCH_PR4_PATH``)
and the vector-backend benchmarks to ``BENCH_pr6.json`` (override with
``BENCH_PR6_PATH``); CI uploads both as artifacts and fails if the
vector backend's speedup drops below its floor.

Result caches are bypassed throughout — these measure simulation (or
trace replay), never the result cache.
"""

import json
import os
import time
from pathlib import Path

import pytest

from conftest import run_once

from repro.experiments import profiling
from repro.experiments.runner import clear_cache

#: Smaller than BENCH_SCALE: throughput smoke, not a paper reproduction.
SCALE = 0.5

#: The skip clock's win scales with device width (the per-cycle loop pays
#: O(SMs) per issuing cycle); the clock benchmarks use a paper-sized SM
#: count instead of the scaled-down default_sim device.
WIDE_SMS = 64


def _record_bench(key, payload, pr="pr4"):
    """Merge one benchmark's numbers into ``BENCH_<pr>.json`` at the repo
    root (override the location with ``BENCH_<PR>_PATH``)."""
    default = Path(__file__).resolve().parent.parent / f"BENCH_{pr}.json"
    path = Path(os.environ.get(f"BENCH_{pr.upper()}_PATH", default))
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data[key] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


@pytest.mark.slow
def test_event_core_throughput(benchmark):
    clear_cache()
    result, seconds = run_once(
        benchmark, profiling.timed_run, "bfs", "cawa", scale=SCALE,
        core="event",
    )
    assert result.cycles > 0 and seconds > 0
    benchmark.extra_info["workload"] = "bfs"
    benchmark.extra_info["scheme"] = "cawa"
    benchmark.extra_info["issue_core"] = "event"
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["cycles_per_second"] = result.cycles / seconds


@pytest.mark.slow
def test_event_vs_scan_speedup(benchmark):
    clear_cache()
    report = run_once(
        benchmark, profiling.compare_cores, "bfs", "cawa", scale=SCALE,
        repeats=2,
    )
    # Bit-identical simulation outcomes are the hard invariant; wall-clock
    # speedup is recorded for tracking, not asserted (CI machines vary).
    assert report["event"]["cycles"] == report["scan"]["cycles"]
    benchmark.extra_info["event_cycles_per_second"] = (
        report["event"]["cycles_per_second"]
    )
    benchmark.extra_info["scan_cycles_per_second"] = (
        report["scan"]["cycles_per_second"]
    )
    benchmark.extra_info["event_speedup"] = report["event_speedup"]["wall"]


@pytest.mark.slow
def test_trace_replay_speedup(benchmark):
    """Trace replay vs execution-driven simulation on the reference cell.

    Records the wall-clock speedup of replaying a warm in-memory trace
    over a cold execute run (the cold-result/warm-trace sweep case).  The
    bit-identical contract is the hard invariant; the speedup ratio is
    recorded for tracking and only loosely asserted (CI machines vary,
    but replay skips the functional executor entirely and must not be
    slower than execution).
    """
    from repro import trace as trace_mod
    from repro.config import GPUConfig
    from repro.core.cawa import apply_scheme
    from repro.experiments.runner import run_scheme

    clear_cache()
    cfg = GPUConfig.default_sim()
    _, program = trace_mod.record_workload("bfs", scale=SCALE, config=cfg,
                                           scheme="cawa")

    def execute_once():
        clear_cache()
        start = time.perf_counter()
        result = run_scheme("bfs", "cawa", scale=SCALE, config=cfg,
                            use_cache=False, persistent=False)
        return result, time.perf_counter() - start

    def replay_once():
        start = time.perf_counter()
        result = trace_mod.replay_program(
            program, apply_scheme(cfg, "cawa"), scheme="cawa"
        )[-1]
        return result, time.perf_counter() - start

    exec_result, exec_seconds = execute_once()
    replay_result, replay_seconds = run_once(benchmark, replay_once)

    assert replay_result.cycles == exec_result.cycles
    assert replay_result.l1_stats.misses == exec_result.l1_stats.misses
    assert replay_result.dram_accesses == exec_result.dram_accesses
    speedup = exec_seconds / replay_seconds
    assert speedup > 1.0, (
        f"trace replay ({replay_seconds:.2f}s) should beat execution "
        f"({exec_seconds:.2f}s)"
    )
    benchmark.extra_info["workload"] = "bfs"
    benchmark.extra_info["scheme"] = "cawa"
    benchmark.extra_info["execute_seconds"] = exec_seconds
    benchmark.extra_info["replay_seconds"] = replay_seconds
    benchmark.extra_info["replay_speedup"] = speedup
    benchmark.extra_info["trace_id"] = program.trace_id


def _clock_compare(workload, scale, scheme, repeats=2):
    """Best-of-``repeats`` replay wall time under each clock on a wide device.

    Returns ``(report, cycle_result, skip_result)`` where ``report`` maps
    clock name to ``{"seconds", "cycles", "cycles_per_second", ...}``.
    CPU time (``process_time``) keeps the numbers stable on loaded CI
    machines; trace replay isolates the clocks from functional-execution
    noise (the loops are identical in both frontends).
    """
    from repro import trace as trace_mod
    from repro.config import GPUConfig
    from repro.core.cawa import apply_scheme

    clear_cache()
    record_cfg = GPUConfig.default_sim(num_sms=WIDE_SMS)
    _, program = trace_mod.record_workload(workload, scale=scale,
                                           config=record_cfg, scheme=scheme)
    base = record_cfg.with_frontend("trace")
    report = {}
    results = {}
    for clock in ("cycle", "skip"):
        cfg = apply_scheme(base.with_clock(clock), scheme)
        best = float("inf")
        for _ in range(repeats):
            start = time.process_time()
            result = trace_mod.replay_program(program, cfg, scheme=scheme)[-1]
            seconds = time.process_time() - start
            best = min(best, seconds)
        results[clock] = result
        report[clock] = {
            "seconds": best,
            "cycles": result.cycles,
            "cycles_per_second": result.cycles / best if best > 0 else 0.0,
            "cycles_skipped": result.cycles_skipped,
            "skip_jumps": result.skip_jumps,
        }
    return report, results["cycle"], results["skip"]


@pytest.mark.slow
def test_skip_clock_speedup_strcltr(benchmark):
    """The headline skip-clock cell: strcltr_mid on a 64-SM device.

    The PR's acceptance criterion: the skip clock must beat the per-cycle
    clock by >= 2.5x wall-clock on this memory-bound cell, bit-identically.
    """

    def measure():
        return _clock_compare("strcltr_mid", 16.0, "gto")

    report, cycle_result, skip_result = run_once(benchmark, measure)
    assert cycle_result.cycles == skip_result.cycles
    assert cycle_result.l1_stats.misses == skip_result.l1_stats.misses
    assert cycle_result.dram_accesses == skip_result.dram_accesses
    speedup = report["cycle"]["seconds"] / report["skip"]["seconds"]
    payload = {
        "workload": "strcltr_mid",
        "scheme": "gto",
        "scale": 16.0,
        "num_sms": WIDE_SMS,
        "cycle_seconds": report["cycle"]["seconds"],
        "skip_seconds": report["skip"]["seconds"],
        "cycle_cycles_per_second": report["cycle"]["cycles_per_second"],
        "skip_cycles_per_second": report["skip"]["cycles_per_second"],
        "speedup": speedup,
        "simulated_cycles": skip_result.cycles,
        "cycles_skipped": skip_result.cycles_skipped,
        "skip_jumps": skip_result.skip_jumps,
    }
    benchmark.extra_info.update(payload)
    _record_bench("strcltr_mid_skip_clock", payload)
    assert speedup >= 2.5, (
        f"skip clock speedup {speedup:.2f}x on strcltr_mid is below the "
        "2.5x acceptance floor"
    )


@pytest.mark.slow
def test_skip_clock_not_slower_bfs(benchmark):
    """Regression gate: the skip clock must never lose to the cycle clock
    on bfs (the ISSUE's reference workload).  CI fails on violation."""

    def measure():
        return _clock_compare("bfs", 1.0, "gto")

    report, cycle_result, skip_result = run_once(benchmark, measure)
    assert cycle_result.cycles == skip_result.cycles
    speedup = report["cycle"]["seconds"] / report["skip"]["seconds"]
    payload = {
        "workload": "bfs",
        "scheme": "gto",
        "scale": 1.0,
        "num_sms": WIDE_SMS,
        "cycle_seconds": report["cycle"]["seconds"],
        "skip_seconds": report["skip"]["seconds"],
        "cycle_cycles_per_second": report["cycle"]["cycles_per_second"],
        "skip_cycles_per_second": report["skip"]["cycles_per_second"],
        "speedup": speedup,
        "simulated_cycles": skip_result.cycles,
        "cycles_skipped": skip_result.cycles_skipped,
        "skip_jumps": skip_result.skip_jumps,
    }
    benchmark.extra_info.update(payload)
    _record_bench("bfs_skip_clock", payload)
    assert report["skip"]["seconds"] <= report["cycle"]["seconds"], (
        f"skip clock ({report['skip']['seconds']:.2f}s) slower than cycle "
        f"clock ({report['cycle']['seconds']:.2f}s) on bfs"
    )


@pytest.mark.slow
def test_events_disabled_overhead(benchmark):
    """The disabled observability path must stay near-free.

    With ``events='off'`` every probe site is one ``if self.obs is not
    None`` pointer test; the acceptance criterion is that the disabled run
    costs no more than 2% over the *enabled* run's wall time (i.e. the
    off path must never pay recording costs).  The on/off overhead ratio
    is recorded for tracking.
    """
    from repro.config import GPUConfig
    from repro.experiments.runner import run_scheme

    def best_of(events_spec, repeats=3):
        cfg = GPUConfig.default_sim().with_events(events_spec)
        best = float("inf")
        result = None
        for _ in range(repeats):
            clear_cache()
            start = time.process_time()
            result = run_scheme("bfs", "cawa", scale=SCALE, config=cfg,
                                use_cache=False, persistent=False)
            best = min(best, time.process_time() - start)
        return result, best

    def measure():
        off_result, off_seconds = best_of("off")
        on_result, on_seconds = best_of("on")
        return off_result, off_seconds, on_result, on_seconds

    off_result, off_seconds, on_result, on_seconds = run_once(benchmark, measure)
    # Recording must not perturb timing (the parity suite pins the full
    # grid; this is the smoke-level tripwire).
    assert off_result.cycles == on_result.cycles
    assert on_result.extra["events_recorded"] > 0
    assert "events_recorded" not in off_result.extra

    overhead = on_seconds / off_seconds if off_seconds > 0 else 0.0
    payload = {
        "workload": "bfs",
        "scheme": "cawa",
        "scale": SCALE,
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
        "off_cycles_per_second": (
            off_result.cycles / off_seconds if off_seconds > 0 else 0.0
        ),
        "on_cycles_per_second": (
            on_result.cycles / on_seconds if on_seconds > 0 else 0.0
        ),
        "recording_overhead": overhead,
        "events_recorded": on_result.extra["events_recorded"],
    }
    benchmark.extra_info.update(payload)
    _record_bench("events_overhead", payload)
    assert off_seconds <= on_seconds * 1.02, (
        f"disabled-events run ({off_seconds:.2f}s) more than 2% slower than "
        f"the recording run ({on_seconds:.2f}s): the off path is paying "
        "observability costs"
    )


#: The vector backend's win, like the skip clock's, scales with device
#: width (the scalar per-cycle loop pays O(SMs) per issuing cycle; the
#: vector loop pays O(due SMs) via one numpy wake mask).  The headline
#: cell is a wide-device, memory-stalled replay where scheduling overhead
#: — not per-instruction issue work — dominates the scalar engine.
VECTOR_SMS = 160
VECTOR_WORKLOAD = "synthetic_memstress"
VECTOR_SCALE = 64.0

#: CI floor for the vector-vs-python speedup on the headline cell.  The
#: measured result (recorded in BENCH_pr6.json) is ~5x; the gate leaves
#: headroom for loaded CI machines.
VECTOR_SPEEDUP_FLOOR = 3.0


def _backend_compare(workload, scale, scheme, num_sms, repeats=2):
    """Best-of-``repeats`` replay wall time under each backend.

    Returns ``(report, python_result, vector_result)`` where ``report``
    maps backend name to ``{"seconds", "cycles", "cycles_per_second"}``.
    Trace replay on the per-cycle clock isolates the engines from
    functional execution and from the skip clock's jump heuristics; CPU
    time (``process_time``) keeps the numbers stable on loaded machines.
    """
    from repro import trace as trace_mod
    from repro.config import GPUConfig
    from repro.core.cawa import apply_scheme

    clear_cache()
    record_cfg = GPUConfig.default_sim(num_sms=num_sms)
    _, program = trace_mod.record_workload(workload, scale=scale,
                                           config=record_cfg, scheme=scheme)
    base = record_cfg.with_frontend("trace")
    report = {}
    results = {}
    for backend in ("python", "vector"):
        cfg = apply_scheme(base.with_backend(backend), scheme)
        best = float("inf")
        for _ in range(repeats):
            start = time.process_time()
            result = trace_mod.replay_program(program, cfg, scheme=scheme)[-1]
            seconds = time.process_time() - start
            best = min(best, seconds)
        results[backend] = result
        report[backend] = {
            "seconds": best,
            "cycles": result.cycles,
            "cycles_per_second": result.cycles / best if best > 0 else 0.0,
        }
    return report, results["python"], results["vector"]


@pytest.mark.slow
def test_vector_backend_speedup(benchmark):
    """The PR's headline cell and CI gate for the vector backend.

    Bit-identical results are the hard invariant (re-checked here on the
    wide device); the vector engine must beat the scalar engine by at
    least ``VECTOR_SPEEDUP_FLOOR`` wall-clock.  The measured numbers land
    in ``BENCH_pr6.json`` for tracking across commits.
    """

    def measure():
        return _backend_compare(VECTOR_WORKLOAD, VECTOR_SCALE, "gto",
                                VECTOR_SMS)

    report, python_result, vector_result = run_once(benchmark, measure)
    assert python_result.cycles == vector_result.cycles
    assert python_result.l1_stats.misses == vector_result.l1_stats.misses
    assert python_result.dram_accesses == vector_result.dram_accesses
    speedup = report["python"]["seconds"] / report["vector"]["seconds"]
    payload = {
        "workload": VECTOR_WORKLOAD,
        "scheme": "gto",
        "scale": VECTOR_SCALE,
        "num_sms": VECTOR_SMS,
        "python_seconds": report["python"]["seconds"],
        "vector_seconds": report["vector"]["seconds"],
        "python_cycles_per_second": report["python"]["cycles_per_second"],
        "vector_cycles_per_second": report["vector"]["cycles_per_second"],
        "speedup": speedup,
        "simulated_cycles": vector_result.cycles,
    }
    benchmark.extra_info.update(payload)
    _record_bench("vector_backend_memstress", payload, pr="pr6")
    assert speedup >= VECTOR_SPEEDUP_FLOOR, (
        f"vector backend speedup {speedup:.2f}x on {VECTOR_WORKLOAD} is "
        f"below the {VECTOR_SPEEDUP_FLOOR}x CI floor"
    )


@pytest.mark.slow
def test_vector_backend_not_slower_strcltr(benchmark):
    """Tripwire on a second, issue-denser cell: the vector engine must
    never lose to the scalar engine on the skip-clock headline cell."""

    def measure():
        return _backend_compare("strcltr_mid", 16.0, "gto", WIDE_SMS)

    report, python_result, vector_result = run_once(benchmark, measure)
    assert python_result.cycles == vector_result.cycles
    speedup = report["python"]["seconds"] / report["vector"]["seconds"]
    payload = {
        "workload": "strcltr_mid",
        "scheme": "gto",
        "scale": 16.0,
        "num_sms": WIDE_SMS,
        "python_seconds": report["python"]["seconds"],
        "vector_seconds": report["vector"]["seconds"],
        "python_cycles_per_second": report["python"]["cycles_per_second"],
        "vector_cycles_per_second": report["vector"]["cycles_per_second"],
        "speedup": speedup,
        "simulated_cycles": vector_result.cycles,
    }
    benchmark.extra_info.update(payload)
    _record_bench("vector_backend_strcltr", payload, pr="pr6")
    assert report["vector"]["seconds"] <= report["python"]["seconds"], (
        f"vector backend ({report['vector']['seconds']:.2f}s) slower than "
        f"python ({report['python']['seconds']:.2f}s) on strcltr_mid"
    )


@pytest.mark.slow
def test_events_chrome_artifact(tmp_path):
    """Record the reference cell and write its Chrome trace for CI upload.

    The artifact lands at ``EVENTS_bfs_cawa.trace.json`` (override with
    ``EVENTS_TRACE_PATH``); CI attaches it so any commit's warp timeline
    can be opened in https://ui.perfetto.dev without rerunning anything.
    """
    import json as _json

    from repro.obs import record_events, write_chrome_trace

    clear_cache()
    result, bus = record_events("bfs", "cawa", scale=SCALE)
    events = bus.events()
    assert events

    default = Path(__file__).resolve().parent.parent / "EVENTS_bfs_cawa.trace.json"
    out = Path(os.environ.get("EVENTS_TRACE_PATH", default))
    path = write_chrome_trace(events, out)
    doc = _json.loads(path.read_text(encoding="utf-8"))
    assert doc["traceEvents"], "empty Chrome trace artifact"
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])
    _record_bench("events_chrome_artifact", {
        "path": str(path),
        "trace_events": len(doc["traceEvents"]),
        "simulated_cycles": result.cycles,
    })
