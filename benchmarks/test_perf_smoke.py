"""Simulator-throughput smoke benchmark (host performance, not paper data).

Records **simulated cycles per host CPU second** for the event-driven issue
core on the bfs x cawa cell (the ISSUE's reference cell), the
event-vs-scan core speedup, and the trace-replay-vs-execute speedup, all
into pytest-benchmark's ``extra_info`` so ``--benchmark-json`` output can
be tracked across commits.

Result caches are bypassed throughout — these measure simulation (or
trace replay), never the result cache.
"""

import time

import pytest

from conftest import run_once

from repro.experiments import profiling
from repro.experiments.runner import clear_cache

#: Smaller than BENCH_SCALE: throughput smoke, not a paper reproduction.
SCALE = 0.5


@pytest.mark.slow
def test_event_core_throughput(benchmark):
    clear_cache()
    result, seconds = run_once(
        benchmark, profiling.timed_run, "bfs", "cawa", scale=SCALE,
        core="event",
    )
    assert result.cycles > 0 and seconds > 0
    benchmark.extra_info["workload"] = "bfs"
    benchmark.extra_info["scheme"] = "cawa"
    benchmark.extra_info["issue_core"] = "event"
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["cycles_per_second"] = result.cycles / seconds


@pytest.mark.slow
def test_event_vs_scan_speedup(benchmark):
    clear_cache()
    report = run_once(
        benchmark, profiling.compare_cores, "bfs", "cawa", scale=SCALE,
        repeats=2,
    )
    # Bit-identical simulation outcomes are the hard invariant; wall-clock
    # speedup is recorded for tracking, not asserted (CI machines vary).
    assert report["event"]["cycles"] == report["scan"]["cycles"]
    benchmark.extra_info["event_cycles_per_second"] = (
        report["event"]["cycles_per_second"]
    )
    benchmark.extra_info["scan_cycles_per_second"] = (
        report["scan"]["cycles_per_second"]
    )
    benchmark.extra_info["event_speedup"] = report["event_speedup"]["wall"]


@pytest.mark.slow
def test_trace_replay_speedup(benchmark):
    """Trace replay vs execution-driven simulation on the reference cell.

    Records the wall-clock speedup of replaying a warm in-memory trace
    over a cold execute run (the cold-result/warm-trace sweep case).  The
    bit-identical contract is the hard invariant; the speedup ratio is
    recorded for tracking and only loosely asserted (CI machines vary,
    but replay skips the functional executor entirely and must not be
    slower than execution).
    """
    from repro import trace as trace_mod
    from repro.config import GPUConfig
    from repro.core.cawa import apply_scheme
    from repro.experiments.runner import run_scheme

    clear_cache()
    cfg = GPUConfig.default_sim()
    _, program = trace_mod.record_workload("bfs", scale=SCALE, config=cfg,
                                           scheme="cawa")

    def execute_once():
        clear_cache()
        start = time.perf_counter()
        result = run_scheme("bfs", "cawa", scale=SCALE, config=cfg,
                            use_cache=False, persistent=False)
        return result, time.perf_counter() - start

    def replay_once():
        start = time.perf_counter()
        result = trace_mod.replay_program(
            program, apply_scheme(cfg, "cawa"), scheme="cawa"
        )[-1]
        return result, time.perf_counter() - start

    exec_result, exec_seconds = execute_once()
    replay_result, replay_seconds = run_once(benchmark, replay_once)

    assert replay_result.cycles == exec_result.cycles
    assert replay_result.l1_stats.misses == exec_result.l1_stats.misses
    assert replay_result.dram_accesses == exec_result.dram_accesses
    speedup = exec_seconds / replay_seconds
    assert speedup > 1.0, (
        f"trace replay ({replay_seconds:.2f}s) should beat execution "
        f"({exec_seconds:.2f}s)"
    )
    benchmark.extra_info["workload"] = "bfs"
    benchmark.extra_info["scheme"] = "cawa"
    benchmark.extra_info["execute_seconds"] = exec_seconds
    benchmark.extra_info["replay_seconds"] = replay_seconds
    benchmark.extra_info["replay_speedup"] = speedup
    benchmark.extra_info["trace_id"] = program.trace_id
