"""Simulator-throughput smoke benchmark (host performance, not paper data).

Records **simulated cycles per host CPU second** for the event-driven issue
core on the bfs x cawa cell (the ISSUE's reference cell) plus the
event-vs-scan core speedup, both into pytest-benchmark's ``extra_info`` so
``--benchmark-json`` output can be tracked across commits.

Caches are bypassed throughout — this measures simulation, not replay.
"""

import pytest

from conftest import run_once

from repro.experiments import profiling
from repro.experiments.runner import clear_cache

#: Smaller than BENCH_SCALE: throughput smoke, not a paper reproduction.
SCALE = 0.5


@pytest.mark.slow
def test_event_core_throughput(benchmark):
    clear_cache()
    result, seconds = run_once(
        benchmark, profiling.timed_run, "bfs", "cawa", scale=SCALE,
        core="event",
    )
    assert result.cycles > 0 and seconds > 0
    benchmark.extra_info["workload"] = "bfs"
    benchmark.extra_info["scheme"] = "cawa"
    benchmark.extra_info["issue_core"] = "event"
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["cycles_per_second"] = result.cycles / seconds


@pytest.mark.slow
def test_event_vs_scan_speedup(benchmark):
    clear_cache()
    report = run_once(
        benchmark, profiling.compare_cores, "bfs", "cawa", scale=SCALE,
        repeats=2,
    )
    # Bit-identical simulation outcomes are the hard invariant; wall-clock
    # speedup is recorded for tracking, not asserted (CI machines vary).
    assert report["event"]["cycles"] == report["scan"]["cycles"]
    benchmark.extra_info["event_cycles_per_second"] = (
        report["event"]["cycles_per_second"]
    )
    benchmark.extra_info["scan_cycles_per_second"] = (
        report["scan"]["cycles_per_second"]
    )
    benchmark.extra_info["event_speedup"] = report["event_speedup"]["wall"]
