"""Ablation benches for the design choices called out in DESIGN.md.

Not paper figures — these isolate the contribution of each CAWA component
and of our documented deviations:

* gCAWS greedy time slice vs. pure criticality priority;
* CACP partition modes: priority (default) vs. the paper's static 8/16
  way split vs. the UCP-style dynamic split;
* CPL instruction-term-only vs. full Eq. 1 (stall term included).
"""

import pytest
from conftest import run_once

from repro import GPU, GPUConfig, apply_scheme
from repro.core.cacp import CACPPolicy
from repro.workloads import make_workload

WORKLOAD = "kmeans"


def _run_with(scheme, configure=None):
    cfg = apply_scheme(GPUConfig.default_sim(), scheme)
    gpu = GPU(cfg)
    if configure is not None:
        configure(gpu)
    return make_workload(WORKLOAD).run(gpu, scheme=scheme)


def test_ablation_greedy_time_slice(benchmark):
    """Compare gCAWS with and without the greedy time slice.

    At this simulator's scale the pure priority order (criticality bucket,
    then strictly oldest) concentrates the working set at least as well as
    greedy target retention, so we assert both variants are functional and
    in the same performance regime rather than a strict winner.
    """

    def disable_greedy(gpu):
        for sm in gpu.sms:
            for sched in sm.schedulers:
                sched.greedy = False

    def run_both():
        full = _run_with("gcaws")
        no_greedy = _run_with("gcaws", disable_greedy)
        return full, no_greedy

    full, no_greedy = run_once(benchmark, run_both)
    print(
        f"\nAblation (greedy slice, {WORKLOAD}): "
        f"gcaws IPC={full.ipc:.3f}, non-greedy IPC={no_greedy.ipc:.3f}"
    )
    assert full.ipc > 0 and no_greedy.ipc > 0
    assert 0.5 <= full.ipc / no_greedy.ipc <= 2.0


@pytest.mark.parametrize("mode", ["priority", "static", "dynamic"])
def test_ablation_cacp_partition_modes(benchmark, mode):
    """All three partition modes must run and stay within sane bounds."""

    def set_mode(gpu):
        for sm in gpu.sms:
            if isinstance(sm.l1d.policy, CACPPolicy):
                sm.l1d.policy.mode = mode

    result = run_once(benchmark, _run_with, "cawa", set_mode)
    print(f"\nAblation (CACP mode={mode}, {WORKLOAD}): IPC={result.ipc:.3f} "
          f"MPKI={result.l1_mpki:.2f}")
    assert result.ipc > 0
    assert result.l1_stats.accesses > 0


def test_ablation_cpl_stall_term(benchmark):
    """Disabling CPL's stall term must still produce a working scheduler."""

    def zero_stall(gpu):
        for sm in gpu.sms:
            if sm.cpl is not None:
                original = sm.cpl.on_issue

                def on_issue(warp, stall_cycles, _orig=original):
                    _orig(warp, 0.0)

                sm.cpl.on_issue = on_issue

    full = run_once(benchmark, _run_with, "cawa")
    inst_only = _run_with("cawa", zero_stall)
    print(
        f"\nAblation (CPL stall term, {WORKLOAD}): "
        f"full IPC={full.ipc:.3f}, inst-only IPC={inst_only.ipc:.3f}"
    )
    assert inst_only.ipc > 0
