"""Figure 12 — the critical warp's scheduling priority over time.

Paper: gCAWS proactively keeps the critical warp at high priority and
schedules it until its progress improves, while RR treats it uniformly.
Shape asserted: both schemes produce non-trivial traces, and under gCAWS
the critical warp's criticality rank ends *lower* than it started (the
acceleration worked) or it spends time at the top rank.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig12


def test_fig12_priority_trace(benchmark):
    data = run_once(benchmark, fig12.run, scale=BENCH_SCALE)
    print("\n" + fig12.render(data))
    for scheme in ("rr", "gcaws"):
        assert len(data[scheme]) > 5, f"{scheme}: trace must have samples"
    gcaws_ranks = [rank for _, rank in data["gcaws"]]
    peak = max(gcaws_ranks)
    # The critical warp must reach high priority at some point, and the
    # acceleration should pull its rank down from that peak by the end.
    assert peak >= 2
    assert gcaws_ranks[-1] <= peak
