"""Figure 13 — oracle CAWS vs. gCAWS vs. full CAWA.

Paper: the oracle wins on small kernels (bfs, b+tree, needle); gCAWS/CAWA
win on large kernels and kmeans; CAWA adds ~5% over gCAWS overall but
slightly degrades b+tree / strcltr_small.  Shape asserted: all three
schemes improve the Sens mean; CAWA's mean is at least gCAWS's; kmeans
prefers gCAWS/CAWA over the oracle.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig13
from repro.workloads import SENS_WORKLOADS


def test_fig13_scheduler_compare(benchmark):
    data = run_once(benchmark, fig13.run, scale=BENCH_SCALE)
    print("\n" + fig13.render(data))
    means = {
        scheme: sum(data[(n, scheme)] for n in SENS_WORKLOADS) / len(SENS_WORKLOADS)
        for scheme in fig13.SCHEMES
    }
    for scheme, mean in means.items():
        assert mean > 1.0, f"{scheme} must improve the Sens mean"
    assert means["cawa"] >= means["gcaws"] - 0.02, (
        "CAWA must not lose to gCAWS overall (paper: +5%)"
    )
    # kmeans: the greedy schemes beat the oracle's pure criticality order.
    assert data[("kmeans", "cawa")] >= data[("kmeans", "caws")] - 0.05
