"""Figure 2 — bfs criticality decomposition case study.

Paper: (a) ~20% time gap from workload imbalance, (b) ~40% gap with a
balanced input from branch behaviour, (c) slower warps see more memory
delay.  Shape asserted: both inputs produce a positive fast-to-slow gap
and the memory-stall share is non-trivial.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig02


def test_fig02_bfs_case_study(benchmark):
    data = run_once(benchmark, fig02.run, scale=BENCH_SCALE)
    print("\n" + fig02.render(data))
    times_a = data["a_exec_time"]
    times_b = data["b_exec_time"]
    assert times_a == sorted(times_a)
    gap_a = (times_a[-1] - times_a[0]) / times_a[0]
    gap_b = (times_b[-1] - times_b[0]) / times_b[0]
    assert gap_a > 0.02, "unbalanced input must produce a warp time gap"
    assert gap_b >= 0.0, "balanced input gap must be measurable"
    assert max(data["c_mem_share"]) > 0.05, "memory delay must be visible"
