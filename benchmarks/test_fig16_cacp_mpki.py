"""Figure 16 — L1D MPKI with CACP added to each warp scheduler.

Paper: CACP reduces MPKI under RR/GTO/2-level, with the coordinated CAWA
best overall.  Shape asserted: adding CACP never blows up the mean Sens
MPKI, and it reduces kmeans' MPKI under the baseline scheduler.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig16
from repro.workloads import SENS_WORKLOADS


def _mean(data, scheme):
    return sum(data[(n, scheme)] for n in SENS_WORKLOADS) / len(SENS_WORKLOADS)


def test_fig16_cacp_mpki(benchmark):
    data = run_once(benchmark, fig16.run, scale=BENCH_SCALE)
    print("\n" + fig16.render(data))
    for base_scheme, cacp_scheme in fig16.PAIRINGS:
        assert _mean(data, cacp_scheme) < 1.25 * _mean(data, base_scheme), (
            f"CACP must not blow up MPKI under {base_scheme}"
        )
    assert data[("kmeans", "rr+cacp")] < data[("kmeans", "rr")], (
        "CACP must reduce kmeans' MPKI even under the fair RR scheduler"
    )
