"""Figure 1 — warp execution-time disparity across applications.

Paper: average max-disparity ~45%, peaking around 70% (srad_1).
Shape asserted: substantial disparity exists on average, and the Sens
applications exhibit more of it than a uniform workload would.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig01


def test_fig01_disparity(benchmark):
    data = run_once(benchmark, fig01.run, scale=BENCH_SCALE)
    print("\n" + fig01.render(data))
    average = sum(data.values()) / len(data)
    assert 0.15 <= average <= 0.95, "average disparity should be substantial"
    assert max(data.values()) >= 0.4, "some application should be highly disparate"
    # The paper's designated high-disparity app must show meaningful disparity.
    assert data["srad_1"] >= 0.2
