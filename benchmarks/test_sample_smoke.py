"""Sampled-sweep smoke benchmark: the ISSUE 9 acceptance gate.

Calibrates two machine-filling workloads (``repro sample calibrate``'s
programmatic API), then races the exact trace-replay sweep against
``run_sweep(sampled=True)`` over the same (workload x scheme) grid:

* the sampled sweep must be **>= 10x** faster in wall-clock terms, and
* every reported metric's exact value must fall inside the sampled run's
  own 95% confidence interval (coverage is deterministic here: the
  calibrated cells replay the exact subset calibration measured).

The grid runs at scale 24 (192 blocks per workload) so the ~8% sampling
rate still keeps ~2 waves of machine concurrency resident per SM —
below that, the sampled cycles-per-record rate does not transfer to the
full grid (docs/sampling.md).  Speedup, worst relative error, and
effective cycles/s are recorded in ``BENCH_pr9.json`` (override with
``BENCH_PR9_PATH``); CI uploads the file as an artifact.
"""

import time

import pytest

from conftest import run_once
from test_perf_smoke import _record_bench

from repro.config import GPUConfig
from repro.experiments.runner import clear_cache, run_sweep
from repro.sampling import calibrate as sampling_calibrate
from repro.stats import compare_results, max_rel_error
from repro.stats.sampling import REPORT_METRICS, SampledRunResult

#: 192 blocks per workload: large enough that an 8% block sample still
#: fills the machine (2 SMs x 4 resident blocks x ~2 waves).
SAMPLE_SCALE = 24.0
WORKLOADS = ("backprop", "pathfinder")
SCHEMES = ("rr", "gto")
#: Single candidate rate: the calibration is the gate, not a search.
RATES = (0.08,)
TARGET_REL_ERR = 0.15
SPEEDUP_FLOOR = 10.0


@pytest.mark.slow
def test_sampled_sweep_speedup_and_coverage(benchmark, tmp_path, monkeypatch):
    # Isolated cache: the calibration table, traces, and results must not
    # leak into (or out of) the repo-level .repro_cache/.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro_cache"))
    clear_cache()
    cfg = GPUConfig.default_sim()

    def measure():
        # Calibration records each workload's trace (warming the trace
        # store for both sweeps), runs the exact scheme grid, and probes
        # the candidate rate to pick specs and per-metric envelopes.
        report = sampling_calibrate.calibrate(
            WORKLOADS, schemes=SCHEMES, rates=RATES, scale=SAMPLE_SCALE,
            config=cfg, target_rel_err=TARGET_REL_ERR,
        )

        exact_cfg = cfg.with_frontend("trace")
        clear_cache()
        start = time.perf_counter()
        exact = run_sweep(WORKLOADS, SCHEMES, scale=SAMPLE_SCALE,
                          config=exact_cfg, use_cache=False,
                          persistent=False)
        exact_seconds = time.perf_counter() - start

        clear_cache()
        start = time.perf_counter()
        sampled = run_sweep(WORKLOADS, SCHEMES, scale=SAMPLE_SCALE,
                            config=cfg, sampled=True, use_cache=False,
                            persistent=False)
        sampled_seconds = time.perf_counter() - start
        return report, exact, exact_seconds, sampled, sampled_seconds

    report, exact, exact_seconds, sampled, sampled_seconds = run_once(
        benchmark, measure
    )

    # Calibration must have accepted the rate for both workloads — a
    # spec of None would make the "sampled" sweep silently exact.
    specs = {w: report["workloads"][w]["spec"] for w in WORKLOADS}
    assert all(spec is not None for spec in specs.values()), specs

    worst = 0.0
    for workload in WORKLOADS:
        for scheme in SCHEMES:
            cell = sampled[(workload, scheme)]
            assert isinstance(cell, SampledRunResult), (workload, scheme)
            assert cell.info.envelope_source == "calibrated"
            errors = compare_results(
                cell, exact[(workload, scheme)], REPORT_METRICS
            )
            worst = max(worst, max_rel_error(errors))
            uncovered = {
                name: err.to_dict()
                for name, err in errors.items() if not err.covered
            }
            assert not uncovered, (workload, scheme, uncovered)

    speedup = exact_seconds / sampled_seconds
    assert speedup >= SPEEDUP_FLOOR, (
        f"sampled sweep speedup {speedup:.1f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x gate "
        f"({exact_seconds:.1f}s exact vs {sampled_seconds:.1f}s sampled)"
    )

    total_cycles = sum(r.cycles for r in exact.values())
    payload = {
        "workloads": list(WORKLOADS),
        "schemes": list(SCHEMES),
        "scale": SAMPLE_SCALE,
        "specs": specs,
        "exact_seconds": exact_seconds,
        "sampled_seconds": sampled_seconds,
        "speedup": speedup,
        "max_rel_error": worst,
        "simulated_cycles": total_cycles,
        "exact_cycles_per_second": total_cycles / exact_seconds,
        "effective_cycles_per_second": total_cycles / sampled_seconds,
    }
    _record_bench("sampled_sweep", payload, pr="pr9")
    benchmark.extra_info.update(payload)
