"""Figure 4 — scheduler-induced wait imposed on the critical warp.

Paper: the baseline RR contributes up to 52.4% extra wait time to the
critical warp.  Shape asserted: under every criticality-oblivious
scheduler the critical warp spends a visible share of its time ready but
not selected.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig04


def test_fig04_scheduler_delay(benchmark):
    data = run_once(benchmark, fig04.run, scale=BENCH_SCALE)
    print("\n" + fig04.render(data))
    assert data["rr"] > 0.1, "RR must impose visible scheduling delay"
    assert all(share >= 0.0 for share in data.values())
