"""Figure 11 — CPL criticality prediction accuracy.

Paper: 73% average accuracy; needle is 100% because its blocks hold only
one or two warps.  Shape asserted: the average is well above chance and
needle is perfectly predicted.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig11


def test_fig11_cpl_accuracy(benchmark):
    data = run_once(benchmark, fig11.run, scale=BENCH_SCALE)
    print("\n" + fig11.render(data))
    average = sum(data.values()) / len(data)
    assert average > 0.5, "CPL must beat the 50% chance level on average"
    assert data["needle"] == 1.0, "single-warp blocks are trivially predicted"
    assert all(0.0 <= acc <= 1.0 for acc in data.values())
