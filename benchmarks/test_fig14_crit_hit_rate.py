"""Figure 14 — critical-warp L1D hit rate normalized to baseline.

Paper: CAWA lifts the critical warps' hit rate 2.46x on average and 7.22x
for kmeans, more consistently than criticality-oblivious schedulers.
Shape asserted: CAWA improves the mean critical-warp hit rate, with kmeans
its strongest case.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig14
from repro.workloads import SENS_WORKLOADS


def test_fig14_critical_hit_rate(benchmark):
    data = run_once(benchmark, fig14.run, scale=BENCH_SCALE)
    print("\n" + fig14.render(data))
    cawa_mean = sum(data[(n, "cawa")] for n in SENS_WORKLOADS) / len(SENS_WORKLOADS)
    assert cawa_mean > 1.1, "CAWA must lift critical-warp hit rates on average"
    assert data[("kmeans", "cawa")] > 1.5, "kmeans is the flagship case"
